package netsim

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

func textHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
}

func TestRoundTripBasic(t *testing.T) {
	in := New()
	in.Register("example.com", textHandler("hello"))
	resp, err := in.Client().Get("https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadBody(resp)
	if err != nil || body != "hello" {
		t.Fatalf("body = %q err = %v", body, err)
	}
	if in.Requests() != 1 {
		t.Fatalf("Requests = %d", in.Requests())
	}
}

func TestHostNotFound(t *testing.T) {
	in := New()
	_, err := in.Client().Get("https://nosuch.example/")
	if err == nil {
		t.Fatal("expected error")
	}
	var hnf *HostNotFoundError
	if !errors.As(err, &hnf) || hnf.Host != "nosuch.example" {
		t.Fatalf("err = %v", err)
	}
}

func TestNoHostError(t *testing.T) {
	in := New()
	u, err := url.Parse("/relative")
	if err != nil {
		t.Fatal(err)
	}
	req := &http.Request{URL: u}
	if _, err := in.RoundTrip(req); err == nil {
		t.Fatal("expected error for hostless request")
	}
}

func TestSetCookieFlowsBack(t *testing.T) {
	in := New()
	in.RegisterFunc("example.com", func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "sid", Value: "1"})
		fmt.Fprint(w, "ok")
	})
	resp, err := in.Client().Get("https://example.com/login")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Set-Cookie"); !strings.HasPrefix(got, "sid=1") {
		t.Fatalf("Set-Cookie = %q", got)
	}
}

func TestLatencyDeterministicAndPositive(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	l1 := fetchLatency(t, in, "https://a.example/p1")
	l2 := fetchLatency(t, in, "https://a.example/p1")
	if l1 != l2 {
		t.Fatalf("latency not deterministic: %v vs %v", l1, l2)
	}
	if l1 < 8 || l1 > 70 {
		t.Fatalf("latency out of expected envelope: %v", l1)
	}
}

func fetchLatency(t *testing.T, in *Internet, url string) float64 {
	t.Helper()
	resp, err := in.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return Latency(resp)
}

func TestSetLatencyModel(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	in.SetLatencyModel(func(*http.Request) float64 { return 123 })
	if got := fetchLatency(t, in, "https://a.example/"); got != 123 {
		t.Fatalf("latency = %v", got)
	}
	in.SetLatencyModel(nil) // restore default
	if got := fetchLatency(t, in, "https://a.example/"); got == 123 {
		t.Fatal("nil should restore default model")
	}
}

func TestCNAMECloaking(t *testing.T) {
	in := New()
	var sawHost string
	in.RegisterFunc("tracker.example", func(w http.ResponseWriter, r *http.Request) {
		sawHost = r.Host
		fmt.Fprint(w, "tracker js")
	})
	in.AddCNAME("metrics.site.example", "tracker.example")

	if !in.IsCloaked("metrics.site.example") {
		t.Fatal("IsCloaked = false")
	}
	if in.IsCloaked("tracker.example") {
		t.Fatal("canonical host reported cloaked")
	}
	if got := in.CanonicalHost("metrics.site.example"); got != "tracker.example" {
		t.Fatalf("CanonicalHost = %q", got)
	}

	resp, err := in.Client().Get("https://metrics.site.example/t.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ReadBody(resp)
	if body != "tracker js" {
		t.Fatalf("body = %q", body)
	}
	// The serving handler must observe the alias Host, as over real DNS.
	if sawHost != "metrics.site.example" {
		t.Fatalf("handler saw Host %q", sawHost)
	}
}

func TestCNAMEChainAndCycle(t *testing.T) {
	in := New()
	in.Register("final.example", textHandler("f"))
	in.AddCNAME("a.example", "b.example")
	in.AddCNAME("b.example", "final.example")
	if got := in.CanonicalHost("a.example"); got != "final.example" {
		t.Fatalf("chain resolution = %q", got)
	}
	in.AddCNAME("x.example", "y.example")
	in.AddCNAME("y.example", "x.example")
	// must terminate
	_ = in.CanonicalHost("x.example")
}

func TestTapObservesExchanges(t *testing.T) {
	in := New()
	in.Register("example.com", textHandler("x"))
	var mu sync.Mutex
	var seen []string
	in.Tap(func(ex Exchange) {
		mu.Lock()
		seen = append(seen, ex.Request.URL.String()+" -> "+ex.Host)
		mu.Unlock()
	})
	resp, err := in.Client().Get("https://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(seen) != 1 || seen[0] != "https://example.com/page -> example.com" {
		t.Fatalf("tap saw %v", seen)
	}
}

func TestConcurrentRoundTrips(t *testing.T) {
	in := New()
	for i := 0; i < 10; i++ {
		in.Register(fmt.Sprintf("h%d.example", i), textHandler("x"))
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := in.Client().Get(fmt.Sprintf("https://h%d.example/", i))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}(i)
		}
	}
	wg.Wait()
	if in.Requests() != 200 {
		t.Fatalf("Requests = %d, want 200", in.Requests())
	}
}

func TestServeHTTPByHostHeader(t *testing.T) {
	in := New()
	in.Register("site-a.example", textHandler("A"))
	in.Register("site-b.example", textHandler("B"))

	srv := httptest.NewServer(in)
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = "site-b.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ReadBody(resp)
	if body != "B" {
		t.Fatalf("body = %q, want B", body)
	}

	req2, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req2.Host = "unknown.example:8080"
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
}

func TestHosts(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	in.Register("b.example", textHandler("x"))
	hosts := in.Hosts()
	if len(hosts) != 2 {
		t.Fatalf("Hosts = %v", hosts)
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	in := New()
	in.Register("example.com", textHandler("<html>benchmark body</html>"))
	client := in.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("https://example.com/")
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}

// countingCache is a minimal ResponseCache for fabric tests.
type countingCache struct {
	mu      sync.Mutex
	entries map[string]any
	gets    int
	hits    int
}

func newCountingCache() *countingCache {
	return &countingCache{entries: map[string]any{}}
}

func (c *countingCache) GetResponse(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	v, ok := c.entries[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *countingCache) PutResponse(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = v
	}
}

func TestFreezeServesIdentically(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("A"))
	in.AddCNAME("alias.example", "a.example")
	in.Freeze()

	for _, host := range []string{"a.example", "alias.example"} {
		resp, err := in.Client().Get("https://" + host + "/")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := ReadBody(resp)
		if body != "A" {
			t.Fatalf("%s: body = %q", host, body)
		}
	}
	if in.CanonicalHost("alias.example") != "a.example" {
		t.Fatal("CanonicalHost broken after Freeze")
	}
}

func TestFreezeCopyOnWriteMutation(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("A"))
	in.Freeze()

	// Registration after Freeze must still take effect (copy-on-write).
	in.Register("b.example", textHandler("B"))
	resp, err := in.Client().Get("https://b.example/")
	if err != nil {
		t.Fatal(err)
	}
	if body, _ := ReadBody(resp); body != "B" {
		t.Fatalf("post-freeze registration not served: %q", body)
	}
	var tapped int
	in.Tap(func(Exchange) { tapped++ })
	if _, err := in.Client().Get("https://a.example/"); err != nil {
		t.Fatal(err)
	}
	if tapped != 1 {
		t.Fatalf("post-freeze tap not invoked: %d", tapped)
	}
}

// TestFrozenConcurrentServing exercises the lock-free serving path from
// many goroutines (meaningful mainly under -race).
func TestFrozenConcurrentServing(t *testing.T) {
	in := New()
	for i := 0; i < 8; i++ {
		in.Register(fmt.Sprintf("h%d.example", i), textHandler("x"))
	}
	in.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := in.Client()
			for i := 0; i < 100; i++ {
				resp, err := client.Get(fmt.Sprintf("https://h%d.example/", (g+i)%8))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	if in.Requests() != 800 {
		t.Fatalf("Requests = %d, want 800", in.Requests())
	}
}

func TestResponseCacheReplaysExchanges(t *testing.T) {
	in := New()
	var served int
	in.RegisterFunc("a.example", func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Header().Set("Set-Cookie", "sid=1; Path=/")
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, "BODY")
	})
	cache := newCountingCache()
	in.SetResponseCache(cache)
	in.Freeze()

	var latencies []float64
	var taps int
	in.Tap(func(Exchange) { taps++ })

	for i := 0; i < 3; i++ {
		resp, err := in.Client().Get("https://a.example/")
		if err != nil {
			t.Fatal(err)
		}
		latencies = append(latencies, Latency(resp))
		if sc := resp.Header.Get("Set-Cookie"); sc != "sid=1; Path=/" {
			t.Fatalf("request %d: Set-Cookie = %q", i, sc)
		}
		if h := resp.Header.Get(BodyHashHeader); len(h) != 32 {
			t.Fatalf("request %d: body hash header = %q", i, h)
		}
		body, _ := ReadBody(resp)
		if body != "BODY" {
			t.Fatalf("request %d: body = %q", i, body)
		}
	}
	if served != 1 {
		t.Fatalf("handler ran %d times, want 1 (cache must replay)", served)
	}
	if cache.hits != 2 {
		t.Fatalf("cache hits = %d, want 2", cache.hits)
	}
	if latencies[0] != latencies[1] || latencies[1] != latencies[2] {
		t.Fatalf("latency differs across hits: %v", latencies)
	}
	if taps != 3 || in.Requests() != 3 {
		t.Fatalf("taps = %d, Requests = %d; accounting must not skip hits", taps, in.Requests())
	}
}

func TestResponseCacheSkipsNon200(t *testing.T) {
	in := New()
	in.RegisterFunc("sink.example", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	in.RegisterFunc("err.example", func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	})
	cache := newCountingCache()
	in.SetResponseCache(cache)

	for i := 0; i < 2; i++ {
		resp, _ := in.Client().Get(fmt.Sprintf("https://sink.example/p?beacon=%d", i))
		resp.Body.Close()
		resp, _ = in.Client().Get("https://err.example/missing")
		resp.Body.Close()
	}
	if len(cache.entries) != 0 {
		t.Fatalf("non-200 responses were cached: %d entries", len(cache.entries))
	}
}

func TestResponseCacheKeyedByQueryAndHost(t *testing.T) {
	in := New()
	in.RegisterFunc("q.example", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "q=%s", r.URL.RawQuery)
	})
	cache := newCountingCache()
	in.SetResponseCache(cache)

	for _, q := range []string{"a=1", "a=2", "a=1"} {
		resp, err := in.Client().Get("https://q.example/p?" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := ReadBody(resp)
		if body != "q="+q {
			t.Fatalf("query %q served %q", q, body)
		}
	}
	if len(cache.entries) != 2 {
		t.Fatalf("cache entries = %d, want 2 (distinct queries)", len(cache.entries))
	}
}
