package netsim

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

func textHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
}

func TestRoundTripBasic(t *testing.T) {
	in := New()
	in.Register("example.com", textHandler("hello"))
	resp, err := in.Client().Get("https://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadBody(resp)
	if err != nil || body != "hello" {
		t.Fatalf("body = %q err = %v", body, err)
	}
	if in.Requests() != 1 {
		t.Fatalf("Requests = %d", in.Requests())
	}
}

func TestHostNotFound(t *testing.T) {
	in := New()
	_, err := in.Client().Get("https://nosuch.example/")
	if err == nil {
		t.Fatal("expected error")
	}
	var hnf *HostNotFoundError
	if !errors.As(err, &hnf) || hnf.Host != "nosuch.example" {
		t.Fatalf("err = %v", err)
	}
}

func TestNoHostError(t *testing.T) {
	in := New()
	u, err := url.Parse("/relative")
	if err != nil {
		t.Fatal(err)
	}
	req := &http.Request{URL: u}
	if _, err := in.RoundTrip(req); err == nil {
		t.Fatal("expected error for hostless request")
	}
}

func TestSetCookieFlowsBack(t *testing.T) {
	in := New()
	in.RegisterFunc("example.com", func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "sid", Value: "1"})
		fmt.Fprint(w, "ok")
	})
	resp, err := in.Client().Get("https://example.com/login")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Set-Cookie"); !strings.HasPrefix(got, "sid=1") {
		t.Fatalf("Set-Cookie = %q", got)
	}
}

func TestLatencyDeterministicAndPositive(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	l1 := fetchLatency(t, in, "https://a.example/p1")
	l2 := fetchLatency(t, in, "https://a.example/p1")
	if l1 != l2 {
		t.Fatalf("latency not deterministic: %v vs %v", l1, l2)
	}
	if l1 < 8 || l1 > 70 {
		t.Fatalf("latency out of expected envelope: %v", l1)
	}
}

func fetchLatency(t *testing.T, in *Internet, url string) float64 {
	t.Helper()
	resp, err := in.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return Latency(resp)
}

func TestSetLatencyModel(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	in.SetLatencyModel(func(*http.Request) float64 { return 123 })
	if got := fetchLatency(t, in, "https://a.example/"); got != 123 {
		t.Fatalf("latency = %v", got)
	}
	in.SetLatencyModel(nil) // restore default
	if got := fetchLatency(t, in, "https://a.example/"); got == 123 {
		t.Fatal("nil should restore default model")
	}
}

func TestCNAMECloaking(t *testing.T) {
	in := New()
	var sawHost string
	in.RegisterFunc("tracker.example", func(w http.ResponseWriter, r *http.Request) {
		sawHost = r.Host
		fmt.Fprint(w, "tracker js")
	})
	in.AddCNAME("metrics.site.example", "tracker.example")

	if !in.IsCloaked("metrics.site.example") {
		t.Fatal("IsCloaked = false")
	}
	if in.IsCloaked("tracker.example") {
		t.Fatal("canonical host reported cloaked")
	}
	if got := in.CanonicalHost("metrics.site.example"); got != "tracker.example" {
		t.Fatalf("CanonicalHost = %q", got)
	}

	resp, err := in.Client().Get("https://metrics.site.example/t.js")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ReadBody(resp)
	if body != "tracker js" {
		t.Fatalf("body = %q", body)
	}
	// The serving handler must observe the alias Host, as over real DNS.
	if sawHost != "metrics.site.example" {
		t.Fatalf("handler saw Host %q", sawHost)
	}
}

func TestCNAMEChainAndCycle(t *testing.T) {
	in := New()
	in.Register("final.example", textHandler("f"))
	in.AddCNAME("a.example", "b.example")
	in.AddCNAME("b.example", "final.example")
	if got := in.CanonicalHost("a.example"); got != "final.example" {
		t.Fatalf("chain resolution = %q", got)
	}
	in.AddCNAME("x.example", "y.example")
	in.AddCNAME("y.example", "x.example")
	// must terminate
	_ = in.CanonicalHost("x.example")
}

func TestTapObservesExchanges(t *testing.T) {
	in := New()
	in.Register("example.com", textHandler("x"))
	var mu sync.Mutex
	var seen []string
	in.Tap(func(ex Exchange) {
		mu.Lock()
		seen = append(seen, ex.Request.URL.String()+" -> "+ex.Host)
		mu.Unlock()
	})
	resp, err := in.Client().Get("https://example.com/page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(seen) != 1 || seen[0] != "https://example.com/page -> example.com" {
		t.Fatalf("tap saw %v", seen)
	}
}

func TestConcurrentRoundTrips(t *testing.T) {
	in := New()
	for i := 0; i < 10; i++ {
		in.Register(fmt.Sprintf("h%d.example", i), textHandler("x"))
	}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := in.Client().Get(fmt.Sprintf("https://h%d.example/", i))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}(i)
		}
	}
	wg.Wait()
	if in.Requests() != 200 {
		t.Fatalf("Requests = %d, want 200", in.Requests())
	}
}

func TestServeHTTPByHostHeader(t *testing.T) {
	in := New()
	in.Register("site-a.example", textHandler("A"))
	in.Register("site-b.example", textHandler("B"))

	srv := httptest.NewServer(in)
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = "site-b.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := ReadBody(resp)
	if body != "B" {
		t.Fatalf("body = %q, want B", body)
	}

	req2, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req2.Host = "unknown.example:8080"
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
}

func TestHosts(t *testing.T) {
	in := New()
	in.Register("a.example", textHandler("x"))
	in.Register("b.example", textHandler("x"))
	hosts := in.Hosts()
	if len(hosts) != 2 {
		t.Fatalf("Hosts = %v", hosts)
	}
}

func BenchmarkRoundTrip(b *testing.B) {
	in := New()
	in.Register("example.com", textHandler("<html>benchmark body</html>"))
	client := in.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get("https://example.com/")
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
