package netsim

// This file is the fabric's fault-injection layer: a FaultModel hook
// alongside LatencyModel that lets experiments subject the crawl stack to
// the transient failures of a real measurement network — 5xx responses,
// connection resets, timeouts, truncated bodies, tail-latency spikes, and
// per-host outage ("flap") schedules driven by the virtual clock.
//
// Determinism is the design constraint: a fault decision is a pure
// function of the request (host, path, query, retry attempt, and the
// requesting browser's virtual time, both carried in headers), never of
// global state or wall time. The same seed and fault config therefore
// produce byte-identical per-site records across runs and worker counts,
// and a zero-rate config is indistinguishable from no fault model at all.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// AttemptHeader carries the 1-based retry attempt of a fetch, stamped by
// the browser. Fault models hash it so that a retried request draws a
// fresh fault decision — without it, every transient fault would be
// permanent and retrying pointless.
const AttemptHeader = "X-Netsim-Attempt"

// VClockHeader carries the requesting browser's virtual time in Unix
// milliseconds. Flap schedules read it: a flapping host is down during
// deterministic windows of the *virtual* clock, so a backoff long enough
// to cross the window genuinely rescues the request.
const VClockHeader = "X-Netsim-Vclock-Ms"

// FaultKind enumerates the injectable fault types.
type FaultKind int

// Fault kinds.
const (
	FaultNone        FaultKind = iota
	FaultServerError           // synthesized 5xx response, handler not run
	FaultConnReset             // connection reset: error, no response
	FaultTimeout               // connection timeout: error after a stall
	FaultTruncate              // body cut short, read error at the cut
	FaultTailLatency           // latency multiplied, response intact
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultServerError:
		return "server-error"
	case FaultConnReset:
		return "conn-reset"
	case FaultTimeout:
		return "timeout"
	case FaultTruncate:
		return "truncate"
	case FaultTailLatency:
		return "tail-latency"
	default:
		return "unknown"
	}
}

// FaultDecision is one fault model verdict for one request attempt.
type FaultDecision struct {
	Kind FaultKind
	// Status is the response code for FaultServerError (default 503).
	Status int
	// LatencyMs overrides the charged latency for FaultTimeout (the stall
	// before the failure surfaces; default 1000 ms) and FaultConnReset
	// (default: the latency model's value for the request).
	LatencyMs float64
	// Factor multiplies the modelled latency for FaultTailLatency
	// (default 10).
	Factor float64
	// KeepFrac is the fraction of the body served before the cut for
	// FaultTruncate (default 0.5).
	KeepFrac float64
}

// FaultModel decides the fault (if any) to inject for a request attempt.
// Implementations must be deterministic functions of the request — see
// AttemptHeader and VClockHeader for the retry/time inputs — or seeded
// crawls lose their reproducibility.
type FaultModel func(req *http.Request) FaultDecision

// FaultError is the error returned for connection-level faults
// (FaultConnReset, FaultTimeout). LatencyMs is the virtual time the
// failed attempt consumed; browsers charge it to their clock so failures
// cost simulated time exactly like successes.
type FaultError struct {
	Kind      FaultKind
	Host      string
	LatencyMs float64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("netsim: injected %s: %s", e.Kind, e.Host)
}

// Timeout reports whether the fault was a timeout, matching net.Error.
func (e *FaultError) Timeout() bool { return e.Kind == FaultTimeout }

// FaultConfig parameterizes the seeded deterministic fault model built by
// SeededFaults. All probabilities are per request attempt; the zero value
// injects nothing.
type FaultConfig struct {
	// Seed drives every fault decision. Independent of the web/browser
	// seeds so fault schedules can be varied while holding the web fixed.
	Seed uint64

	PServerError float64 // probability of a synthesized 5xx
	PConnReset   float64 // probability of a connection reset
	PTimeout     float64 // probability of a timeout
	PTruncate    float64 // probability of a truncated body
	PTailLatency float64 // probability of a tail-latency spike

	// ServerErrorStatus is the injected status (default 503).
	ServerErrorStatus int
	// TimeoutMs is the virtual stall charged for a timeout (default 1000).
	TimeoutMs float64
	// TailFactor multiplies the modelled latency on a spike (default 10).
	TailFactor float64
	// TruncateFrac is the fraction of the body served before the cut
	// (default 0.5).
	TruncateFrac float64

	// PHostFlap is the share of hosts with an outage schedule: a flapping
	// host times out every request during deterministic down-windows of
	// the virtual clock. FlapPeriodMs is the schedule period (default
	// 30000) and FlapDownFrac the fraction of each period the host is
	// down (default 0.25); each host gets a seeded phase offset so not
	// every flapping host is down at visit start.
	PHostFlap    float64
	FlapPeriodMs float64
	FlapDownFrac float64
}

// Enabled reports whether any fault rate is non-zero.
func (c FaultConfig) Enabled() bool {
	return c.PServerError > 0 || c.PConnReset > 0 || c.PTimeout > 0 ||
		c.PTruncate > 0 || c.PTailLatency > 0 || c.PHostFlap > 0
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.ServerErrorStatus == 0 {
		c.ServerErrorStatus = http.StatusServiceUnavailable
	}
	if c.TimeoutMs <= 0 {
		c.TimeoutMs = 1000
	}
	if c.TailFactor <= 0 {
		c.TailFactor = 10
	}
	if c.TruncateFrac <= 0 || c.TruncateFrac >= 1 {
		c.TruncateFrac = 0.5
	}
	if c.FlapPeriodMs <= 0 {
		c.FlapPeriodMs = 30000
	}
	if c.FlapDownFrac <= 0 || c.FlapDownFrac >= 1 {
		c.FlapDownFrac = 0.25
	}
	return c
}

// UniformFaults spreads an overall per-attempt fault rate across the
// fault mix in fixed proportions, plus a quarter-rate share of flapping
// hosts. It is the one-knob config behind cmd/experiments -faults.
func UniformFaults(rate float64, seed uint64) FaultConfig {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return FaultConfig{
		Seed:         seed,
		PServerError: 0.35 * rate,
		PConnReset:   0.20 * rate,
		PTimeout:     0.15 * rate,
		PTruncate:    0.15 * rate,
		PTailLatency: 0.15 * rate,
		PHostFlap:    0.25 * rate,
	}
}

// SeededFaults builds the deterministic fault model for a config: every
// decision hashes (seed, host, path, query, attempt), and flap schedules
// additionally read the virtual clock from VClockHeader. Returns nil for
// a config with no fault enabled, so installing a zero config is exactly
// equivalent to installing no model.
func SeededFaults(cfg FaultConfig) FaultModel {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return func(req *http.Request) FaultDecision {
		host := strings.ToLower(req.URL.Hostname())

		// Flap schedule: host-level outage windows on the virtual clock.
		if cfg.PHostFlap > 0 && hash01(cfg.Seed, "flap?", host, 0) < cfg.PHostFlap {
			phase := hash01(cfg.Seed, "flap-phase", host, 0) * cfg.FlapPeriodMs
			vms := requestVClockMs(req)
			if math.Mod(vms+phase, cfg.FlapPeriodMs) < cfg.FlapPeriodMs*cfg.FlapDownFrac {
				return FaultDecision{Kind: FaultTimeout, LatencyMs: cfg.TimeoutMs}
			}
		}

		// Per-attempt transient faults: one uniform draw against the
		// cumulative mix, keyed so each (request, attempt) pair is an
		// independent decision.
		key := host + "\x00" + req.URL.Path + "\x00" + req.URL.RawQuery
		u := hash01(cfg.Seed, "mix", key, requestAttempt(req))
		switch {
		case u < cfg.PServerError:
			return FaultDecision{Kind: FaultServerError, Status: cfg.ServerErrorStatus}
		case u < cfg.PServerError+cfg.PConnReset:
			return FaultDecision{Kind: FaultConnReset}
		case u < cfg.PServerError+cfg.PConnReset+cfg.PTimeout:
			return FaultDecision{Kind: FaultTimeout, LatencyMs: cfg.TimeoutMs}
		case u < cfg.PServerError+cfg.PConnReset+cfg.PTimeout+cfg.PTruncate:
			return FaultDecision{Kind: FaultTruncate, KeepFrac: cfg.TruncateFrac}
		case u < cfg.PServerError+cfg.PConnReset+cfg.PTimeout+cfg.PTruncate+cfg.PTailLatency:
			return FaultDecision{Kind: FaultTailLatency, Factor: cfg.TailFactor}
		}
		return FaultDecision{}
	}
}

// requestAttempt reads the 1-based attempt from AttemptHeader (1 when
// absent, e.g. a non-browser client).
func requestAttempt(req *http.Request) int {
	n, err := strconv.Atoi(req.Header.Get(AttemptHeader))
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// requestVClockMs reads the browser's virtual time from VClockHeader
// (0 when absent).
func requestVClockMs(req *http.Request) float64 {
	f, err := strconv.ParseFloat(req.Header.Get(VClockHeader), 64)
	if err != nil {
		return 0
	}
	return f
}

// hash01 maps (seed, salt, key, attempt) to a uniform value in [0,1)
// via FNV-1a, the same mixing primitive as the latency model. The
// attempt is spread across the word before the final mix: xoring the
// small integer in directly only perturbed the hash's low bits, so
// consecutive attempts drew values within ~4e-4 of each other and a
// retried request nearly always replayed its first attempt's fault —
// despite the documented contract that each attempt draws
// independently. Attempt 0 (the flap-schedule draws, which must not
// vary per attempt) hashes exactly as before.
func hash01(seed uint64, salt, key string, attempt int) float64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= 1099511628211
	}
	mix(salt)
	mix("\x00")
	mix(key)
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	h *= 1099511628211
	return float64(h>>11) / (1 << 53)
}

// truncatedBody serves a cut-short body: the truncated bytes read
// normally, then the reader fails with io.ErrUnexpectedEOF — exactly how
// a dropped connection mid-transfer surfaces to io.ReadAll.
type truncatedBody struct{ r io.Reader }

func (t *truncatedBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return nil }

// applyTruncation rewrites a response to deliver only the leading
// KeepFrac of full and to fail the read at the cut. The body-hash header
// is stripped: the delivered bytes no longer match the hash, and a
// downstream artifact cache keyed on it would poison itself.
func applyTruncation(resp *http.Response, full string, fd FaultDecision) {
	frac := fd.KeepFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.5
	}
	keep := int(float64(len(full)) * frac)
	resp.Header.Del(BodyHashHeader)
	resp.Body = &truncatedBody{r: strings.NewReader(full[:keep])}
	resp.ContentLength = int64(keep)
}
