package netsim

import (
	"net/http"
	"sync"
	"testing"
)

func vantageTestNet(t *testing.T) *Internet {
	t.Helper()
	in := New()
	in.RegisterFunc("www.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello"))
	})
	in.Freeze()
	return in
}

func vget(t *testing.T, rt http.RoundTripper, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDefaultVantageViewIdentical: the zero Vantage's view observes the
// fabric exactly as a direct RoundTrip — same status, body, and charged
// latency — so threading a Vantage through unconditionally changes
// nothing.
func TestDefaultVantageViewIdentical(t *testing.T) {
	in := vantageTestNet(t)
	v := Vantage{}
	if !v.Default() {
		t.Fatal("zero Vantage must report Default()")
	}
	view := in.From(v)

	direct := vget(t, in, "https://www.example.com/a/b")
	viaView := vget(t, view, "https://www.example.com/a/b")
	if direct.StatusCode != viaView.StatusCode {
		t.Fatalf("status: direct=%d view=%d", direct.StatusCode, viaView.StatusCode)
	}
	db, _ := ReadBody(direct)
	vb, _ := ReadBody(viaView)
	if db != vb {
		t.Fatalf("body: direct=%q view=%q", db, vb)
	}
	if dl, vl := Latency(direct), Latency(viaView); dl != vl {
		t.Fatalf("latency: direct=%v view=%v", dl, vl)
	}
}

// TestRegionLatencyDeterministicAndDistinct: the same (region, URL)
// always charges the same latency, and different regions see the same
// host at genuinely different distances.
func TestRegionLatencyDeterministicAndDistinct(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "https://www.example.com/x", nil)
	eu := RegionLatency("eu-west")
	us := RegionLatency("us-east")
	if eu(req) != eu(req) {
		t.Fatal("RegionLatency is not deterministic")
	}
	// One host could collide; across several hosts the regions must
	// separate somewhere.
	distinct := false
	for _, u := range []string{
		"https://a.example/", "https://b.example/", "https://c.example/",
		"https://d.example/", "https://e.example/",
	} {
		r, _ := http.NewRequest(http.MethodGet, u, nil)
		if eu(r) != us(r) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("eu-west and us-east latency models are identical across hosts")
	}
	if RegionLatency("") == nil {
		t.Fatal("empty region must fall back to DefaultLatency")
	}
}

// TestVantageLatencyOnFabric: a named vantage's view charges its
// region's latency while the fabric's direct path keeps the default
// model — the same frozen web, observed from two distances at once.
func TestVantageLatencyOnFabric(t *testing.T) {
	in := vantageTestNet(t)
	url := "https://www.example.com/p"
	directLat := Latency(vget(t, in, url))
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	euWant := RegionLatency("eu-west")(req)
	euGot := Latency(vget(t, in.From(Vantage{Name: "eu-west"}), url))
	if euGot != euWant {
		t.Fatalf("eu-west view charged %v, model says %v", euGot, euWant)
	}
	if directLat != Latency(vget(t, in, url)) {
		t.Fatal("direct latency changed after vantage use")
	}
}

// TestVantageFaultsOverride: a vantage with its own fault config draws
// its own schedule, while the fabric's direct path stays fault-free —
// region-dependent fault rates over one registered web.
func TestVantageFaultsOverride(t *testing.T) {
	in := vantageTestNet(t)
	cfg := FaultConfig{Seed: RegionSeed(7, "flaky-region"), PConnReset: 1}
	view := in.From(Vantage{Name: "flaky-region", Faults: cfg})
	req, _ := http.NewRequest(http.MethodGet, "https://www.example.com/q", nil)
	if _, err := view.RoundTrip(req); err == nil {
		t.Fatal("vantage with PConnReset=1 served a request")
	}
	if _, err := in.RoundTrip(req); err != nil {
		t.Fatalf("fabric's direct path inherited the vantage's faults: %v", err)
	}
	if in.Faults() == 0 {
		t.Fatal("vantage fault was not counted on the shared fabric counters")
	}
}

// TestRegionSeed: stable per region, distinct across regions, identity
// for the empty region.
func TestRegionSeed(t *testing.T) {
	if RegionSeed(42, "") != 42 {
		t.Fatal("empty region must keep the seed")
	}
	if RegionSeed(42, "eu") != RegionSeed(42, "eu") {
		t.Fatal("RegionSeed not deterministic")
	}
	if RegionSeed(42, "eu") == RegionSeed(42, "us") {
		t.Fatal("regions share a fault seed")
	}
}

// TestVantageViewsConcurrentlyShareFabric: the unified cross-vantage
// scheduler drives every vantage's view through one worker pool at
// once, so views must be safely usable from concurrent goroutines over
// the shared frozen fabric — and each view's observations must stay
// deterministic (per-(vantage, URL) latency unchanged by concurrency).
// Run under -race.
func TestVantageViewsConcurrentlyShareFabric(t *testing.T) {
	in := vantageTestNet(t)
	views := []http.RoundTripper{
		in.From(Vantage{Name: "eu-west"}),
		in.From(Vantage{Name: "us-east"}),
		in, // the default path shares the pool too
	}
	urls := []string{
		"https://www.example.com/a",
		"https://www.example.com/b",
		"https://www.example.com/c",
	}
	// Sequential reference: per (view, url) latency and body.
	type obs struct {
		lat  float64
		body string
	}
	want := map[int]map[string]obs{}
	for vi, view := range views {
		want[vi] = map[string]obs{}
		for _, u := range urls {
			resp := vget(t, view, u)
			b, _ := ReadBody(resp)
			want[vi][u] = obs{lat: Latency(resp), body: b}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				vi := (w + i) % len(views)
				u := urls[(w*7+i)%len(urls)]
				req, _ := http.NewRequest(http.MethodGet, u, nil)
				resp, err := views[vi].RoundTrip(req)
				if err != nil {
					errs <- err.Error()
					return
				}
				b, _ := ReadBody(resp)
				if got := (obs{lat: Latency(resp), body: b}); got != want[vi][u] {
					errs <- "concurrent observation diverged from sequential reference"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
