package netsim

import (
	"net/http"
	"testing"
)

func vantageTestNet(t *testing.T) *Internet {
	t.Helper()
	in := New()
	in.RegisterFunc("www.example.com", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello"))
	})
	in.Freeze()
	return in
}

func vget(t *testing.T, rt http.RoundTripper, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDefaultVantageViewIdentical: the zero Vantage's view observes the
// fabric exactly as a direct RoundTrip — same status, body, and charged
// latency — so threading a Vantage through unconditionally changes
// nothing.
func TestDefaultVantageViewIdentical(t *testing.T) {
	in := vantageTestNet(t)
	v := Vantage{}
	if !v.Default() {
		t.Fatal("zero Vantage must report Default()")
	}
	view := in.From(v)

	direct := vget(t, in, "https://www.example.com/a/b")
	viaView := vget(t, view, "https://www.example.com/a/b")
	if direct.StatusCode != viaView.StatusCode {
		t.Fatalf("status: direct=%d view=%d", direct.StatusCode, viaView.StatusCode)
	}
	db, _ := ReadBody(direct)
	vb, _ := ReadBody(viaView)
	if db != vb {
		t.Fatalf("body: direct=%q view=%q", db, vb)
	}
	if dl, vl := Latency(direct), Latency(viaView); dl != vl {
		t.Fatalf("latency: direct=%v view=%v", dl, vl)
	}
}

// TestRegionLatencyDeterministicAndDistinct: the same (region, URL)
// always charges the same latency, and different regions see the same
// host at genuinely different distances.
func TestRegionLatencyDeterministicAndDistinct(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "https://www.example.com/x", nil)
	eu := RegionLatency("eu-west")
	us := RegionLatency("us-east")
	if eu(req) != eu(req) {
		t.Fatal("RegionLatency is not deterministic")
	}
	// One host could collide; across several hosts the regions must
	// separate somewhere.
	distinct := false
	for _, u := range []string{
		"https://a.example/", "https://b.example/", "https://c.example/",
		"https://d.example/", "https://e.example/",
	} {
		r, _ := http.NewRequest(http.MethodGet, u, nil)
		if eu(r) != us(r) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("eu-west and us-east latency models are identical across hosts")
	}
	if RegionLatency("") == nil {
		t.Fatal("empty region must fall back to DefaultLatency")
	}
}

// TestVantageLatencyOnFabric: a named vantage's view charges its
// region's latency while the fabric's direct path keeps the default
// model — the same frozen web, observed from two distances at once.
func TestVantageLatencyOnFabric(t *testing.T) {
	in := vantageTestNet(t)
	url := "https://www.example.com/p"
	directLat := Latency(vget(t, in, url))
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	euWant := RegionLatency("eu-west")(req)
	euGot := Latency(vget(t, in.From(Vantage{Name: "eu-west"}), url))
	if euGot != euWant {
		t.Fatalf("eu-west view charged %v, model says %v", euGot, euWant)
	}
	if directLat != Latency(vget(t, in, url)) {
		t.Fatal("direct latency changed after vantage use")
	}
}

// TestVantageFaultsOverride: a vantage with its own fault config draws
// its own schedule, while the fabric's direct path stays fault-free —
// region-dependent fault rates over one registered web.
func TestVantageFaultsOverride(t *testing.T) {
	in := vantageTestNet(t)
	cfg := FaultConfig{Seed: RegionSeed(7, "flaky-region"), PConnReset: 1}
	view := in.From(Vantage{Name: "flaky-region", Faults: cfg})
	req, _ := http.NewRequest(http.MethodGet, "https://www.example.com/q", nil)
	if _, err := view.RoundTrip(req); err == nil {
		t.Fatal("vantage with PConnReset=1 served a request")
	}
	if _, err := in.RoundTrip(req); err != nil {
		t.Fatalf("fabric's direct path inherited the vantage's faults: %v", err)
	}
	if in.Faults() == 0 {
		t.Fatal("vantage fault was not counted on the shared fabric counters")
	}
}

// TestRegionSeed: stable per region, distinct across regions, identity
// for the empty region.
func TestRegionSeed(t *testing.T) {
	if RegionSeed(42, "") != 42 {
		t.Fatal("empty region must keep the seed")
	}
	if RegionSeed(42, "eu") != RegionSeed(42, "eu") {
		t.Fatal("RegionSeed not deterministic")
	}
	if RegionSeed(42, "eu") == RegionSeed(42, "us") {
		t.Fatal("regions share a fault seed")
	}
}
