package netsim

import (
	"net/http"
	"testing"
)

// TestPooledReplayAndRelease: cache-hit responses cycle through the
// response pool; repeated fetch/release rounds must keep returning the
// exact cached exchange (status, headers, body, body hash).
func TestPooledReplayAndRelease(t *testing.T) {
	in := New()
	in.RegisterFunc("a.example", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Header().Set("Set-Cookie", "sid=1; Path=/")
		w.Write([]byte("hello body"))
	})
	in.SetResponseCache(newMapCache())
	in.Freeze()
	client := in.Client()

	var hash string
	for i := 0; i < 20; i++ {
		resp, err := client.Get("https://a.example/x")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || resp.Status != "200 OK" {
			t.Fatalf("round %d: status %q", i, resp.Status)
		}
		if got := resp.Header.Get("Content-Type"); got != "text/plain" {
			t.Fatalf("round %d: content-type %q", i, got)
		}
		if got := resp.Header.Values("Set-Cookie"); len(got) != 1 || got[0] != "sid=1; Path=/" {
			t.Fatalf("round %d: set-cookie %v", i, got)
		}
		if Latency(resp) <= 0 {
			t.Fatalf("round %d: missing latency header", i)
		}
		body, err := ReadBody(resp)
		if err != nil || body != "hello body" {
			t.Fatalf("round %d: body %q err %v", i, body, err)
		}
		h := resp.Header.Get(BodyHashHeader)
		if i == 1 {
			hash = h // first round is the miss (no hash check before fill)
		} else if i > 1 && h != hash {
			t.Fatalf("round %d: body hash drifted %q != %q", i, h, hash)
		}
		ReleaseResponse(resp)
	}
}

// TestReleaseResponseIgnoresForeign: releasing handler-path and
// foreign responses must be a safe no-op.
func TestReleaseResponseIgnoresForeign(t *testing.T) {
	ReleaseResponse(nil)
	ReleaseResponse(&http.Response{})
	in := New()
	in.RegisterFunc("b.example", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x"))
	})
	in.Freeze()
	resp, err := in.Client().Get("https://b.example/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadBody(resp)
	if err != nil || body != "x" {
		t.Fatalf("body %q err %v", body, err)
	}
	ReleaseResponse(resp) // non-pooled stringBody: ignored
}

// TestTapsDisablePooledReplay: a registered tap may retain the exchange,
// so cache hits must not hand out pooled responses then.
func TestTapsDisablePooledReplay(t *testing.T) {
	in := New()
	in.RegisterFunc("c.example", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("tapped"))
	})
	in.SetResponseCache(newMapCache())
	var retained []*http.Response
	in.Tap(func(ex Exchange) { retained = append(retained, ex.Response) })
	in.Freeze()
	client := in.Client()
	for i := 0; i < 3; i++ {
		resp, err := client.Get("https://c.example/")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBody(resp); err != nil {
			t.Fatal(err)
		}
		ReleaseResponse(resp)
	}
	// Every retained response must still carry its own intact status.
	for i, r := range retained {
		if r.StatusCode != 200 {
			t.Fatalf("retained response %d corrupted: %d", i, r.StatusCode)
		}
	}
}
