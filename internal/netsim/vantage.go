package netsim

// Vantage points: the same frozen web, observed from different network
// locations. The fabric's default latency model is a single per-host
// hash — one implicit observer. A Vantage names an observer and gives it
// its own latency model and fault rates, so a multi-region measurement
// can crawl one registered web "from" several places and compare the
// latency and failure tails (the Figure 6 comparison across regions)
// without regenerating or re-registering anything.
//
// A Vantage never mutates the Internet: From returns a lightweight view
// that overrides the latency/fault models per request, so any number of
// vantage views can serve concurrently over one fabric, sharing its
// handlers, CNAMEs, taps, response cache, and counters.

import "net/http"

// Vantage is a named crawl origin: a region with its own latency model
// and fault rates. The zero value is the implicit default vantage — it
// observes the fabric exactly as a direct RoundTrip does (the installed
// latency and fault models), so code that threads a Vantage through
// unconditionally stays byte-identical to code that never heard of them.
type Vantage struct {
	// Name identifies the vantage point (e.g. "eu-west"). A non-empty
	// name with a nil Latency derives RegionLatency(Name); the empty
	// name keeps the fabric's installed latency model.
	Name string
	// Latency overrides the latency model for requests from this
	// vantage. Nil falls back as described on Name.
	Latency LatencyModel
	// Faults, when enabled, replaces the fabric's fault model for
	// requests from this vantage (region-dependent fault rates). The
	// zero config keeps the fabric's installed model, so a vantage can
	// reshape latency only.
	Faults FaultConfig
}

// Default reports whether the vantage is the implicit default: it names
// nothing and overrides nothing, so crawling from it is exactly crawling
// the fabric directly.
func (v Vantage) Default() bool {
	return v.Name == "" && v.Latency == nil && !v.Faults.Enabled()
}

// RegionLatency is the per-region analogue of DefaultLatency: a
// deterministic per-(region, host) RTT — a region-wide floor plus a
// region-salted per-host spread plus the per-path component — so two
// vantages see the same host at genuinely different, reproducible
// distances. An empty region returns DefaultLatency.
func RegionLatency(region string) LatencyModel {
	if region == "" {
		return DefaultLatency
	}
	rh := fnv64(region)
	floor := 4 + float64(rh%40) // region RTT floor: 4–43 ms
	return func(req *http.Request) float64 {
		h := rh
		host := req.URL.Hostname()
		for i := 0; i < len(host); i++ {
			h ^= uint64(host[i])
			h *= 1099511628211
		}
		p := fnv64(req.URL.Path)
		return floor + float64(h%53) + float64(p%7)
	}
}

// RegionSeed derives a per-region fault seed from a base seed, so a
// multi-vantage run can hold the web fixed while every region draws an
// independent fault schedule (region-dependent fault rates use the same
// FaultConfig with this seed). The empty region returns seed unchanged.
func RegionSeed(seed uint64, region string) uint64 {
	if region == "" {
		return seed
	}
	return seed ^ (fnv64(region) | 1)
}

// VantageView is an http.RoundTripper serving requests from one vantage
// point over a shared Internet. Construct with Internet.From.
type VantageView struct {
	net     *Internet
	vantage Vantage
	latency LatencyModel // nil: fabric's installed model
	faults  FaultModel   // nil: fabric's installed model
}

// From returns the fabric viewed from a vantage point. The view resolves
// the vantage's models once — Latency, else RegionLatency(Name) for a
// named vantage; SeededFaults(Faults) when enabled — and falls back to
// the fabric's installed models per request otherwise, so the default
// vantage's view is request-for-request identical to the Internet
// itself. Routing state (hosts, CNAMEs, taps, response cache) and the
// request/fault counters are shared with every other view.
func (i *Internet) From(v Vantage) *VantageView {
	vv := &VantageView{net: i, vantage: v}
	switch {
	case v.Latency != nil:
		vv.latency = v.Latency
	case v.Name != "":
		vv.latency = RegionLatency(v.Name)
	}
	if v.Faults.Enabled() {
		vv.faults = SeededFaults(v.Faults)
	}
	return vv
}

// Vantage returns the vantage point this view observes from.
func (vv *VantageView) Vantage() Vantage { return vv.vantage }

// RoundTrip implements http.RoundTripper from the vantage point.
func (vv *VantageView) RoundTrip(req *http.Request) (*http.Response, error) {
	s := vv.net.view()
	lat, flt := s.latency, s.faults
	if vv.latency != nil {
		lat = vv.latency
	}
	if vv.faults != nil {
		flt = vv.faults
	}
	return vv.net.roundTrip(req, &s, lat, flt)
}
