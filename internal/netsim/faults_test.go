package netsim

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// faultTestNet builds a one-host fabric serving a fixed body.
func faultTestNet(t *testing.T) *Internet {
	t.Helper()
	in := New()
	in.RegisterFunc("srv.example", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "0123456789abcdef0123456789abcdef")
	})
	return in
}

func get(t *testing.T, in *Internet, url string, attempt int, vms float64) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if attempt > 0 {
		req.Header.Set(AttemptHeader, strconv.Itoa(attempt))
	}
	if vms > 0 {
		req.Header.Set(VClockHeader, strconv.FormatFloat(vms, 'f', -1, 64))
	}
	return in.RoundTrip(req)
}

// TestSeededFaultsZeroConfigIsNil: a zero-rate config produces a nil
// model, so installing it is byte-equivalent to no fault layer at all.
func TestSeededFaultsZeroConfigIsNil(t *testing.T) {
	if m := SeededFaults(FaultConfig{Seed: 42}); m != nil {
		t.Fatal("zero-rate config built a non-nil model")
	}
	if UniformFaults(0, 1).Enabled() {
		t.Fatal("UniformFaults(0) reports Enabled")
	}
}

// TestFaultDecisionsDeterministic: the same (seed, request, attempt)
// always draws the same fault, and different attempts draw independently.
func TestFaultDecisionsDeterministic(t *testing.T) {
	model := SeededFaults(UniformFaults(0.5, 7))
	req, _ := http.NewRequest(http.MethodGet, "https://srv.example/a/b?q=1", nil)
	req.Header.Set(AttemptHeader, "1")
	first := model(req)
	for i := 0; i < 10; i++ {
		if got := model(req); got != first {
			t.Fatalf("decision changed across calls: %+v vs %+v", got, first)
		}
	}
	// Across many paths and attempts, at least one fault kind must vary —
	// a constant model would make retries pointless.
	kinds := map[FaultKind]bool{}
	for p := 0; p < 50; p++ {
		for a := 1; a <= 3; a++ {
			r, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("https://srv.example/p%d", p), nil)
			r.Header.Set(AttemptHeader, strconv.Itoa(a))
			kinds[model(r).Kind] = true
		}
	}
	if len(kinds) < 3 {
		t.Fatalf("fault mix degenerate: only kinds %v seen", kinds)
	}
}

// TestFaultInjectionKinds drives each injected kind end-to-end through
// RoundTrip using a handcrafted model.
func TestFaultInjectionKinds(t *testing.T) {
	in := faultTestNet(t)
	var decide FaultDecision
	in.SetFaultModel(func(req *http.Request) FaultDecision { return decide })

	// Server error: synthesized 5xx, handler untouched.
	decide = FaultDecision{Kind: FaultServerError}
	resp, err := get(t, in, "https://srv.example/x", 1, 0)
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("server-error fault: resp=%v err=%v", resp, err)
	}

	// Connection reset and timeout: typed errors carrying latency.
	for _, kind := range []FaultKind{FaultConnReset, FaultTimeout} {
		decide = FaultDecision{Kind: kind, LatencyMs: 123}
		_, err = get(t, in, "https://srv.example/x", 1, 0)
		var fe *FaultError
		if !errors.As(err, &fe) || fe.Kind != kind || fe.LatencyMs != 123 {
			t.Fatalf("%v fault: err=%v", kind, err)
		}
	}

	// Truncation: partial body, read error at the cut, hash stripped.
	decide = FaultDecision{Kind: FaultTruncate, KeepFrac: 0.5}
	resp, err = get(t, in, "https://srv.example/x", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated read err = %v, want ErrUnexpectedEOF", rerr)
	}
	if len(body) != 16 {
		t.Fatalf("truncated body length = %d, want 16", len(body))
	}
	if resp.Header.Get(BodyHashHeader) != "" {
		t.Fatal("truncated response kept its body-hash header")
	}

	// Tail latency: response intact, charged latency multiplied.
	decide = FaultDecision{}
	resp, _ = get(t, in, "https://srv.example/x", 1, 0)
	base := Latency(resp)
	decide = FaultDecision{Kind: FaultTailLatency, Factor: 10}
	resp, _ = get(t, in, "https://srv.example/x", 1, 0)
	if got := Latency(resp); got != 10*base {
		t.Fatalf("tail latency = %v, want %v", got, 10*base)
	}
	if n := in.Faults(); n != 5 {
		t.Fatalf("fault counter = %d, want 5", n)
	}

	// Unregistered hosts stay NXDOMAIN regardless of the model.
	decide = FaultDecision{Kind: FaultServerError}
	_, err = get(t, in, "https://missing.example/", 1, 0)
	var nf *HostNotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("missing host err = %v, want HostNotFoundError", err)
	}
}

// TestFlapScheduleVirtualClock: a 100%-flap config makes the host fail
// during the down-window and succeed outside it, as a pure function of
// the virtual time carried on the request.
func TestFlapScheduleVirtualClock(t *testing.T) {
	in := faultTestNet(t)
	cfg := FaultConfig{Seed: 3, PHostFlap: 1, FlapPeriodMs: 1000, FlapDownFrac: 0.5}
	in.SetFaultModel(SeededFaults(cfg))

	// Scan one full period: both outcomes must occur, each in one
	// contiguous window, and identically on a second scan.
	outcomes := make([]bool, 0, 20)
	for vms := 0.0; vms < 1000; vms += 50 {
		_, err := get(t, in, "https://srv.example/x", 1, vms+1)
		outcomes = append(outcomes, err == nil)
	}
	up, down := 0, 0
	for i, ok := range outcomes {
		if ok {
			up++
		} else {
			down++
		}
		_, err := get(t, in, "https://srv.example/x", 1, float64(i*50)+1)
		if (err == nil) != ok {
			t.Fatalf("flap outcome at %dms not reproducible", i*50)
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("flap schedule degenerate: up=%d down=%d", up, down)
	}
}

// TestTruncationCacheEquivalence: with a response cache installed, a
// truncated delivery must not poison the cache — the next clean request
// gets the full body, and a truncated cache-hit delivery matches the
// truncated handler delivery byte for byte.
func TestTruncationCacheEquivalence(t *testing.T) {
	read := func(in *Internet, attempt int) (string, error) {
		resp, err := get(t, in, "https://srv.example/x", attempt, 0)
		if err != nil {
			return "", err
		}
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	truncateFirst := func(req *http.Request) FaultDecision {
		if requestAttempt(req) == 1 {
			return FaultDecision{Kind: FaultTruncate, KeepFrac: 0.25}
		}
		return FaultDecision{}
	}

	cached := faultTestNet(t)
	cached.SetResponseCache(newMapCache())
	cached.SetFaultModel(truncateFirst)
	plain := faultTestNet(t)
	plain.SetFaultModel(truncateFirst)

	// Warm the cache with a clean exchange so the faulted request below
	// replays from cache on one fabric and the handler on the other.
	if body, err := read(cached, 2); err != nil || len(body) != 32 {
		t.Fatalf("warmup: body=%q err=%v", body, err)
	}
	cBody, cErr := read(cached, 1)
	pBody, pErr := read(plain, 1)
	if cBody != pBody || !errors.Is(cErr, io.ErrUnexpectedEOF) || !errors.Is(pErr, io.ErrUnexpectedEOF) {
		t.Fatalf("cached truncation %q/%v != uncached %q/%v", cBody, cErr, pBody, pErr)
	}
	// The cache still serves the intact body afterwards.
	if body, err := read(cached, 2); err != nil || len(body) != 32 {
		t.Fatalf("cache poisoned by truncation: body=%q err=%v", body, err)
	}
}

// mapCache is a minimal ResponseCache for tests.
type mapCache struct{ m map[string]any }

func newMapCache() *mapCache { return &mapCache{m: map[string]any{}} }

func (c *mapCache) GetResponse(key string) (any, bool) { v, ok := c.m[key]; return v, ok }
func (c *mapCache) PutResponse(key string, v any)      { c.m[key] = v }
