// Package urlutil provides the URL, host, and origin helpers shared by the
// browser engine, the measurement pipeline, and CookieGuard itself.
//
// The paper (§2.1) is careful to distinguish cross-ORIGIN (the strict SOP
// triple scheme/host/port) from cross-DOMAIN (different eTLD+1 executing in
// the same main-frame origin). Origin implements the former; the
// RegistrableDomain helpers implement the latter.
package urlutil

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"cookieguard/internal/publicsuffix"
)

// Origin is the Same-Origin Policy triple.
type Origin struct {
	Scheme string
	Host   string // host without port
	Port   string // normalized: "" means scheme default
}

// ParseOrigin extracts the origin of a URL string. The port is normalized:
// explicit default ports (80 for http, 443 for https) become "".
func ParseOrigin(rawURL string) (Origin, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Origin{}, fmt.Errorf("urlutil: parse origin: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return Origin{}, fmt.Errorf("urlutil: %q has no scheme or host", rawURL)
	}
	o := Origin{Scheme: strings.ToLower(u.Scheme), Host: strings.ToLower(u.Hostname()), Port: u.Port()}
	if (o.Scheme == "http" && o.Port == "80") || (o.Scheme == "https" && o.Port == "443") {
		o.Port = ""
	}
	return o, nil
}

// String renders the origin in serialized form, e.g. "https://example.com"
// or "http://example.com:8080".
func (o Origin) String() string {
	if o.Port != "" {
		return o.Scheme + "://" + o.Host + ":" + o.Port
	}
	return o.Scheme + "://" + o.Host
}

// Equal reports SOP equality: same scheme, host, and port.
func (o Origin) Equal(other Origin) bool { return o == other }

// RegistrableDomain returns the eTLD+1 of the origin's host.
func (o Origin) RegistrableDomain() string {
	return publicsuffix.RegistrableDomain(o.Host)
}

// Hostname extracts the lower-cased host (without port) from a URL string,
// returning "" if the URL does not parse or has no host.
//
// The common "scheme://host[:port]/..." shape is handled with a single
// scan and no allocation (strings.ToLower returns its input unchanged for
// already-lowercase hosts, which is every host the synthetic web serves);
// anything unusual falls back to net/url.
func Hostname(rawURL string) string {
	if h, ok := fastHostname(rawURL); ok {
		return strings.ToLower(h)
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// fastHostname slices the host out of a plain absolute URL. ok is false
// for any shape with userinfo, IPv6 literals, escapes, a non-numeric
// port, characters url.Parse would reject, or no "//" authority — those
// take the slow path, so the fast path never reports a host for a URL
// the slow path would call unparsable.
func fastHostname(rawURL string) (string, bool) {
	i := strings.Index(rawURL, "://")
	if i <= 0 {
		return "", false
	}
	for j := 0; j < i; j++ { // scheme must be [a-zA-Z][a-zA-Z0-9+.-]*
		c := rawURL[j]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z':
		case j > 0 && ('0' <= c && c <= '9' || c == '+' || c == '-' || c == '.'):
		default:
			return "", false
		}
	}
	rest := rawURL[i+3:]
	end := len(rest)
	for j := 0; j < len(rest); j++ {
		if c := rest[j]; c == '/' || c == '?' || c == '#' {
			end = j
			break
		}
	}
	host := rest[:end]
	if host == "" {
		return "", false
	}
	if k := strings.IndexByte(host, ':'); k >= 0 {
		port := host[k+1:]
		host = host[:k]
		if host == "" {
			return "", false
		}
		for i := 0; i < len(port); i++ { // url.Parse rejects non-numeric ports
			if port[i] < '0' || port[i] > '9' {
				return "", false
			}
		}
	}
	for i := 0; i < len(host); i++ {
		c := host[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return "", false // userinfo, brackets, escapes, spaces, …
		}
	}
	return host, true
}

// RegistrableDomain returns the eTLD+1 of the host of a URL string, or ""
// when the URL has no usable host. Inline scripts and data: URLs have no
// host and therefore no domain — callers treat "" as "unattributable".
func RegistrableDomain(rawURL string) string {
	h := Hostname(rawURL)
	if h == "" {
		return ""
	}
	return publicsuffix.RegistrableDomain(h)
}

// SameDomain reports whether two URLs share an eTLD+1. Either side being
// unattributable ("" domain) is never same-domain.
func SameDomain(urlA, urlB string) bool {
	da, db := RegistrableDomain(urlA), RegistrableDomain(urlB)
	return da != "" && da == db
}

// IsThirdParty reports whether scriptURL is third-party with respect to
// siteURL, i.e. their registrable domains differ. An unattributable script
// URL is conservatively treated as third party.
func IsThirdParty(scriptURL, siteURL string) bool {
	sd := RegistrableDomain(scriptURL)
	pd := RegistrableDomain(siteURL)
	if sd == "" {
		return true
	}
	return sd != pd
}

// QueryValues returns all decoded query-string values of a URL, in a
// deterministic order (sorted by key, then by position). These are the
// strings the exfiltration detector scans for cookie-derived identifiers.
func QueryValues(rawURL string) []string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil
	}
	q := u.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		out = append(out, q[k]...)
	}
	return out
}

// QueryString returns the raw (undecoded) query string of a URL, without
// the leading "?". The exfiltration pipeline also scans this raw form
// because trackers commonly pack identifiers with custom separators ("*",
// ".") that survive URL encoding (see the LinkedIn case study in §5.4).
func QueryString(rawURL string) string {
	u, err := url.Parse(rawURL)
	if err != nil {
		return ""
	}
	return u.RawQuery
}

// WithParams returns base with the given parameters appended to its query
// string. Keys are added in sorted order for determinism.
func WithParams(base string, params map[string]string) string {
	u, err := url.Parse(base)
	if err != nil {
		return base
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if u.RawQuery == "" {
		// Fast path for the common beacon shape (no pre-existing query):
		// build the encoded query directly. url.Values.Encode emits
		// sorted keys with QueryEscape applied to both sides — exactly
		// this loop, minus the Values map and its per-key slices.
		var b strings.Builder
		for i, k := range keys {
			if i > 0 {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(params[k]))
		}
		u.RawQuery = b.String()
		return u.String()
	}
	q := u.Query()
	for _, k := range keys {
		q.Set(k, params[k])
	}
	u.RawQuery = q.Encode()
	return u.String()
}

// Resolve resolves ref against base, mirroring how a browser resolves a
// relative src attribute. Invalid inputs return ref unchanged.
func Resolve(base, ref string) string {
	b, err := url.Parse(base)
	if err != nil {
		return ref
	}
	return ResolveRef(b, ref)
}

// ResolveRef is Resolve against an already parsed base. Pages resolve
// dozens of references against the same base URL; parsing the base once
// per page removes the dominant allocation of the old string-only path.
func ResolveRef(base *url.URL, ref string) string {
	r, err := url.Parse(ref)
	if err != nil {
		return ref
	}
	return base.ResolveReference(r).String()
}
