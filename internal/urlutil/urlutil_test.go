package urlutil

import (
	"reflect"
	"testing"
)

func TestParseOrigin(t *testing.T) {
	cases := []struct {
		raw  string
		want Origin
	}{
		{"https://www.example.com/path?q=1", Origin{"https", "www.example.com", ""}},
		{"https://www.example.com:443/", Origin{"https", "www.example.com", ""}},
		{"http://example.com:80/", Origin{"http", "example.com", ""}},
		{"http://example.com:8080/", Origin{"http", "example.com", "8080"}},
		{"HTTPS://EXAMPLE.COM/", Origin{"https", "example.com", ""}},
	}
	for _, c := range cases {
		got, err := ParseOrigin(c.raw)
		if err != nil {
			t.Errorf("ParseOrigin(%q): %v", c.raw, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseOrigin(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

func TestParseOriginErrors(t *testing.T) {
	for _, raw := range []string{"", "not a url at all\x7f", "/relative/only", "mailto:x@y.com"} {
		if _, err := ParseOrigin(raw); err == nil {
			t.Errorf("ParseOrigin(%q) = nil error, want error", raw)
		}
	}
}

func TestOriginStringAndEqual(t *testing.T) {
	a, _ := ParseOrigin("https://example.com:443/x")
	b, _ := ParseOrigin("https://example.com/y")
	if !a.Equal(b) {
		t.Error("default-port origins should be equal")
	}
	if a.String() != "https://example.com" {
		t.Errorf("String = %q", a.String())
	}
	c, _ := ParseOrigin("https://example.com:8443/")
	if a.Equal(c) {
		t.Error("different ports must differ")
	}
	if c.String() != "https://example.com:8443" {
		t.Errorf("String = %q", c.String())
	}
	// Paper §2.1: subdomain => different origin, same domain.
	d, _ := ParseOrigin("https://subdomain.example.com/")
	if a.Equal(d) {
		t.Error("subdomain must be a different origin")
	}
	if a.RegistrableDomain() != d.RegistrableDomain() {
		t.Error("subdomain must share the registrable domain")
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := []struct{ raw, want string }{
		{"https://www.example.com/a.js", "example.com"},
		{"https://px.ads.linkedin.com/attribution_trigger?x=1", "linkedin.com"},
		{"", ""},
		{"/inline", ""},
		{"https://cdn.shopifycloud.com/shopify-perf-kit-1.6.1.min.js", "shopifycloud.com"},
	}
	for _, c := range cases {
		if got := RegistrableDomain(c.raw); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestIsThirdParty(t *testing.T) {
	site := "https://www.optimonk.com/"
	cases := []struct {
		script string
		want   bool
	}{
		{"https://cdn.optimonk.com/app.js", false},
		{"https://snap.licdn.com/li.lms-analytics/insight.min.js", true},
		{"https://www.googletagmanager.com/gtm.js", true},
		{"", true}, // inline: unattributable => third party (conservative)
	}
	for _, c := range cases {
		if got := IsThirdParty(c.script, site); got != c.want {
			t.Errorf("IsThirdParty(%q) = %v, want %v", c.script, got, c.want)
		}
	}
}

func TestSameDomain(t *testing.T) {
	if !SameDomain("https://a.facebook.net/x", "https://b.facebook.net/y") {
		t.Error("same eTLD+1 should be same domain")
	}
	if SameDomain("https://facebook.com/", "https://fbcdn.net/") {
		t.Error("facebook.com vs fbcdn.net must be cross-domain")
	}
	if SameDomain("", "") {
		t.Error("empty URLs are never same-domain")
	}
}

func TestQueryValues(t *testing.T) {
	got := QueryValues("https://t.example/collect?b=2&a=1&a=3")
	want := []string{"1", "3", "2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QueryValues = %v, want %v", got, want)
	}
	if QueryValues("://bad") != nil {
		t.Error("invalid URL should return nil")
	}
}

func TestQueryString(t *testing.T) {
	raw := "https://px.ads.linkedin.com/attribution_trigger?pid=621340&url=www.optimonk.com*_ga*NDQ0MzMyMzY0"
	got := QueryString(raw)
	if got != "pid=621340&url=www.optimonk.com*_ga*NDQ0MzMyMzY0" {
		t.Errorf("QueryString = %q", got)
	}
}

func TestWithParams(t *testing.T) {
	got := WithParams("https://t.example/collect?x=0", map[string]string{"b": "2", "a": "1"})
	want := "https://t.example/collect?a=1&b=2&x=0"
	if got != want {
		t.Errorf("WithParams = %q, want %q", got, want)
	}
}

func TestResolve(t *testing.T) {
	cases := []struct{ base, ref, want string }{
		{"https://example.com/page", "/app.js", "https://example.com/app.js"},
		{"https://example.com/dir/page", "other.js", "https://example.com/dir/other.js"},
		{"https://example.com/", "https://cdn.example.net/x.js", "https://cdn.example.net/x.js"},
	}
	for _, c := range cases {
		if got := Resolve(c.base, c.ref); got != c.want {
			t.Errorf("Resolve(%q,%q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}
