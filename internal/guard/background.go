package guard

// background is the extension's background.js analogue: the metadata
// store mapping cookie names to their creator eTLD+1, serving snapshot
// requests from the page wrapper over a message channel (the
// contentScript.js relay hop).
type background struct {
	msgs chan bgMsg
	done chan struct{}
}

type bgMsgKind int

const (
	msgRecord bgMsgKind = iota
	msgSnapshot
	msgLookup
)

type bgMsg struct {
	kind    bgMsgKind
	name    string
	creator string

	snapReply   chan map[string]string
	lookupReply chan lookupResult
}

type lookupResult struct {
	creator string
	exists  bool
}

func newBackground() *background {
	b := &background{msgs: make(chan bgMsg, 16), done: make(chan struct{})}
	go b.loop()
	return b
}

func (b *background) loop() {
	creators := map[string]string{}
	for {
		select {
		case m := <-b.msgs:
			switch m.kind {
			case msgRecord:
				if _, exists := creators[m.name]; !exists {
					creators[m.name] = m.creator
				}
			case msgSnapshot:
				cp := make(map[string]string, len(creators))
				for k, v := range creators {
					cp[k] = v
				}
				m.snapReply <- cp
			case msgLookup:
				c, ok := creators[m.name]
				m.lookupReply <- lookupResult{creator: c, exists: ok}
			}
		case <-b.done:
			return
		}
	}
}

// record registers a cookie creation (first creator wins, matching the
// extension's dataset semantics).
func (b *background) record(name, creator string) {
	select {
	case b.msgs <- bgMsg{kind: msgRecord, name: name, creator: creator}:
	case <-b.done:
	}
}

// snapshot returns a copy of the dataset (the "provide a current copy of
// the dataset" message of §6.2).
func (b *background) snapshot() map[string]string {
	reply := make(chan map[string]string, 1)
	select {
	case b.msgs <- bgMsg{kind: msgSnapshot, snapReply: reply}:
		// msgs is buffered, so the send can succeed after the loop has
		// already exited; never wait on a reply without also watching
		// done, or a racing close() strands this goroutine forever.
		select {
		case cp := <-reply:
			return cp
		case <-b.done:
			return map[string]string{}
		}
	case <-b.done:
		return map[string]string{}
	}
}

// lookup fetches one cookie's creator.
func (b *background) lookup(name string) (string, bool) {
	reply := make(chan lookupResult, 1)
	select {
	case b.msgs <- bgMsg{kind: msgLookup, name: name, lookupReply: reply}:
		// See snapshot: the buffered send can outlive the loop.
		select {
		case r := <-reply:
			return r.creator, r.exists
		case <-b.done:
			return "", false
		}
	case <-b.done:
		return "", false
	}
}

// creatorOf is lookup ignoring existence.
func (b *background) creatorOf(name string) string {
	c, _ := b.lookup(name)
	return c
}

// close terminates the background goroutine.
func (b *background) close() {
	select {
	case <-b.done:
	default:
		close(b.done)
	}
}
