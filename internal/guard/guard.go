// Package guard implements CookieGuard, the paper's defense (§6): runtime
// isolation of first-party cookies on a per-script-domain basis.
//
// The architecture mirrors the browser extension's three components
// (§6.2, Figure 4):
//
//   - Background — the metadata store mapping each first-party cookie to
//     the eTLD+1 of its creator, updated on every creation event from
//     both JavaScript APIs and HTTP Set-Cookie headers, served over a
//     message channel;
//   - ContentRelay — the messaging hop between page world and background
//     (contentScript.js), crossed once per cookie operation;
//   - PageWrapper — the wrapped document.cookie / cookieStore surface
//     (cookieGuard.js), installed as browser.CookieMiddleware.
//
// Policy (§6.1): a script reads only the cookies its own eTLD+1 created;
// scripts from the visited site's domain retain full access (owner
// full-access); inline scripts are denied in Strict mode or treated as
// first-party in Relaxed mode; an optional entity whitelist groups
// same-owner domains (e.g. facebook.com/fbcdn.net), the refinement that
// reduces breakage from 11% to 3% (§7.2).
package guard

import (
	"strings"
	"sync"

	"cookieguard/internal/browser"
	"cookieguard/internal/cookiejar"
	"cookieguard/internal/entity"
	"cookieguard/internal/jsdsl"
	"cookieguard/internal/urlutil"
	"cookieguard/internal/vclock"
)

// InlineMode selects how unattributable inline scripts are treated.
type InlineMode int

// Inline-script handling modes (§6.1).
const (
	// InlineStrict denies inline scripts all cookie access
	// (safe-by-default; used in the paper's evaluation).
	InlineStrict InlineMode = iota
	// InlineRelaxed treats inline scripts as first-party.
	InlineRelaxed
)

// Policy configures enforcement.
type Policy struct {
	// Inline selects strict or relaxed inline-script handling.
	Inline InlineMode
	// OwnerFullAccess grants scripts from the visited site's own
	// domain access to every first-party cookie (§6.1). The paper's
	// deployment enables this to avoid breaking site functionality.
	OwnerFullAccess bool
	// Entities, when non-nil, groups domains of the same owner: a
	// script may access cookies created by any domain of its entity,
	// and site ownership extends to the site's entity (§7.2 whitelist).
	Entities *entity.Map
	// PerOpOverheadMS is the virtual cost of one page↔background
	// message round trip, charged to the browser clock when bound
	// (drives the Table 4 overhead measurements).
	PerOpOverheadMS float64
}

// DefaultPolicy is the configuration evaluated in the paper: strict
// inline handling, owner full access, no whitelist. The per-op overhead
// models the synchronous page↔content-script↔background message round
// trip of the extension, which dominates its measured slowdown (§7.3).
func DefaultPolicy() Policy {
	return Policy{Inline: InlineStrict, OwnerFullAccess: true, PerOpOverheadMS: 1.8}
}

// WhitelistPolicy is DefaultPolicy plus the entity whitelist.
func WhitelistPolicy(m *entity.Map) Policy {
	p := DefaultPolicy()
	p.Entities = m
	return p
}

// BlockKind classifies a blocked or filtered operation.
type BlockKind string

// Block kinds.
const (
	BlockRead   BlockKind = "read-filtered"
	BlockWrite  BlockKind = "write-blocked"
	BlockDelete BlockKind = "delete-blocked"
	BlockInline BlockKind = "inline-denied"
)

// BlockEvent records one enforcement decision.
type BlockEvent struct {
	Kind     BlockKind
	Name     string // affected cookie ("" for full-jar reads)
	Accessor string // eTLD+1 of the acting script
	Creator  string // recorded creator of the cookie
}

// Guard is one CookieGuard instance, scoped to one page visit (matching
// the extension's per-tab state).
type Guard struct {
	policy Policy

	bg    *background
	clock *vclock.Clock

	mu     sync.Mutex
	blocks []BlockEvent
}

// New creates a Guard with the given policy and starts its background
// component.
func New(policy Policy) *Guard {
	return &Guard{policy: policy, bg: newBackground()}
}

// Close shuts the background component down.
func (g *Guard) Close() { g.bg.close() }

// Middleware returns the PageWrapper: the cookie-API interceptor.
func (g *Guard) Middleware() browser.CookieMiddleware {
	return func(next browser.CookieAPI) browser.CookieAPI {
		return &pageWrapper{g: g, next: next}
	}
}

// AttachBrowser wires the guard to a browser: it observes HTTP Set-Cookie
// events (background.js's webRequest hook) and binds the clock for
// overhead accounting.
func (g *Guard) AttachBrowser(b *browser.Browser) {
	g.clock = b.Clock()
	b.Jar().Observe(func(ch cookiejar.Change) {
		if ch.Source != cookiejar.SourceHTTP || ch.Cookie.HttpOnly {
			return
		}
		if ch.Kind == cookiejar.ChangeCreated {
			g.bg.record(ch.Cookie.Name, urlutil.RegistrableDomain("https://"+ch.Host+"/"))
		}
	})
}

// Blocks returns the enforcement log.
func (g *Guard) Blocks() []BlockEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BlockEvent, len(g.blocks))
	copy(out, g.blocks)
	return out
}

func (g *Guard) logBlock(ev BlockEvent) {
	g.mu.Lock()
	g.blocks = append(g.blocks, ev)
	g.mu.Unlock()
}

func (g *Guard) chargeOverhead() {
	if g.clock != nil && g.policy.PerOpOverheadMS > 0 {
		g.clock.AdvanceMillis(g.policy.PerOpOverheadMS)
	}
}

// accessor resolves the acting principal's domain; ok=false means access
// is denied outright (strict inline).
func (g *Guard) accessor(ctx browser.AccessContext) (domain string, ok bool) {
	if ctx.Inline || (ctx.ScriptURL == "" && ctx.Inline) {
		if g.policy.Inline == InlineStrict {
			return "", false
		}
		return ctx.PageDomain(), true
	}
	if ctx.ScriptURL == "" {
		// Page-level code (no script): the site itself.
		return ctx.PageDomain(), true
	}
	return ctx.ScriptDomain(), true
}

// isSiteOwner reports whether domain is the visited site (or its entity,
// under the whitelist).
func (g *Guard) isSiteOwner(domain, siteDomain string) bool {
	if !g.policy.OwnerFullAccess {
		return false
	}
	if domain == siteDomain {
		return true
	}
	return g.policy.Entities != nil && g.policy.Entities.SameEntity(domain, siteDomain)
}

// mayAccess reports whether accessor may touch a cookie created by
// creator on site.
func (g *Guard) mayAccess(accessor, creator, site string) bool {
	if g.isSiteOwner(accessor, site) {
		return true
	}
	if creator == "" {
		// Unattributed cookie (predates the guard or set by denied
		// inline code): owned by the site.
		return g.isSiteOwner(accessor, site) || accessor == site
	}
	if accessor == creator {
		return true
	}
	return g.policy.Entities != nil && g.policy.Entities.SameEntity(accessor, creator)
}

// --- PageWrapper (cookieGuard.js) ----------------------------------------

type pageWrapper struct {
	g    *Guard
	next browser.CookieAPI
}

func (p *pageWrapper) GetDocumentCookie(ctx browser.AccessContext) string {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return ""
	}
	raw := p.next.GetDocumentCookie(ctx)
	site := ctx.PageDomain()
	if g.isSiteOwner(accessor, site) {
		return raw
	}
	dataset := g.bg.snapshot()
	names, values := jsdsl.ParseCookieString(raw)
	var kept []string
	filtered := false
	for _, n := range names {
		if g.mayAccess(accessor, dataset[n], site) {
			kept = append(kept, n+"="+values[n])
		} else {
			filtered = true
		}
	}
	if filtered {
		g.logBlock(BlockEvent{Kind: BlockRead, Accessor: accessor})
	}
	return strings.Join(kept, "; ")
}

func (p *pageWrapper) SetDocumentCookie(ctx browser.AccessContext, assignment string) {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return
	}
	name := assignmentName(assignment)
	if name == "" {
		return
	}
	site := ctx.PageDomain()
	dataset := g.bg.snapshot()
	creator, exists := dataset[name]
	if !exists {
		// Creation: record the accessor as creator and pass through.
		g.bg.record(name, accessor)
		p.next.SetDocumentCookie(ctx, assignment)
		return
	}
	if g.mayAccess(accessor, creator, site) {
		p.next.SetDocumentCookie(ctx, assignment)
		return
	}
	kind := BlockWrite
	if isDeletion(assignment) {
		kind = BlockDelete
	}
	g.logBlock(BlockEvent{Kind: kind, Name: name, Accessor: accessor, Creator: creator})
}

func (p *pageWrapper) StoreGet(ctx browser.AccessContext, name string) (jsdsl.CookieRecord, bool) {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return jsdsl.CookieRecord{}, false
	}
	site := ctx.PageDomain()
	if !g.isSiteOwner(accessor, site) {
		if !g.mayAccess(accessor, g.bg.creatorOf(name), site) {
			g.logBlock(BlockEvent{Kind: BlockRead, Name: name, Accessor: accessor, Creator: g.bg.creatorOf(name)})
			return jsdsl.CookieRecord{}, false
		}
	}
	return p.next.StoreGet(ctx, name)
}

func (p *pageWrapper) StoreGetAll(ctx browser.AccessContext) []jsdsl.CookieRecord {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return nil
	}
	all := p.next.StoreGetAll(ctx)
	site := ctx.PageDomain()
	if g.isSiteOwner(accessor, site) {
		return all
	}
	dataset := g.bg.snapshot()
	var kept []jsdsl.CookieRecord
	filtered := false
	for _, rec := range all {
		if g.mayAccess(accessor, dataset[rec.Name], site) {
			kept = append(kept, rec)
		} else {
			filtered = true
		}
	}
	if filtered {
		g.logBlock(BlockEvent{Kind: BlockRead, Accessor: accessor})
	}
	return kept
}

func (p *pageWrapper) StoreSet(ctx browser.AccessContext, rec jsdsl.CookieRecord) {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return
	}
	site := ctx.PageDomain()
	creator, exists := g.bg.lookup(rec.Name)
	if !exists {
		g.bg.record(rec.Name, accessor)
		p.next.StoreSet(ctx, rec)
		return
	}
	if g.mayAccess(accessor, creator, site) {
		p.next.StoreSet(ctx, rec)
		return
	}
	g.logBlock(BlockEvent{Kind: BlockWrite, Name: rec.Name, Accessor: accessor, Creator: creator})
}

func (p *pageWrapper) StoreDelete(ctx browser.AccessContext, name string) {
	g := p.g
	g.chargeOverhead()
	accessor, ok := g.accessor(ctx)
	if !ok {
		g.logBlock(BlockEvent{Kind: BlockInline, Accessor: "inline"})
		return
	}
	site := ctx.PageDomain()
	creator, exists := g.bg.lookup(name)
	if exists && !g.mayAccess(accessor, creator, site) {
		g.logBlock(BlockEvent{Kind: BlockDelete, Name: name, Accessor: accessor, Creator: creator})
		return
	}
	p.next.StoreDelete(ctx, name)
}

// assignmentName extracts the cookie name from an assignment string.
func assignmentName(assignment string) string {
	nv := assignment
	if i := strings.IndexByte(nv, ';'); i >= 0 {
		nv = nv[:i]
	}
	eq := strings.IndexByte(nv, '=')
	if eq <= 0 {
		return ""
	}
	return strings.TrimSpace(nv[:eq])
}

// isDeletion reports whether an assignment is the expire-now idiom.
func isDeletion(assignment string) bool {
	low := strings.ToLower(assignment)
	idx := strings.Index(low, "max-age")
	if idx < 0 {
		return false
	}
	rest := strings.TrimLeft(low[idx+len("max-age"):], " =")
	if end := strings.IndexByte(rest, ';'); end >= 0 {
		rest = rest[:end]
	}
	rest = strings.TrimSpace(rest)
	return rest == "0" || strings.HasPrefix(rest, "-")
}
