package guard

// Regression tests for the background message loop's shutdown paths
// (fixed in PR 2): msgs is buffered, so a send can succeed after the
// loop has exited — a requester that then waited on its reply channel
// alone would hang forever. Both request paths must select on done
// alongside the reply.

import (
	"sync"
	"testing"
	"time"
)

// withTimeout fails the test if f does not return within the deadline —
// the hang these tests guard against.
func withTimeout(t *testing.T, name string, f func()) {
	t.Helper()
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		f()
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("%s hung after background close", name)
	}
}

func TestBackgroundRoundTrip(t *testing.T) {
	b := newBackground()
	defer b.close()

	b.record("uid", "tracker.example")
	b.record("uid", "other.example") // first creator wins
	b.record("sess", "site.example")

	if c, ok := b.lookup("uid"); !ok || c != "tracker.example" {
		t.Fatalf("lookup(uid) = %q,%v; want tracker.example,true", c, ok)
	}
	if _, ok := b.lookup("missing"); ok {
		t.Fatal("lookup(missing) reported existence")
	}
	if c := b.creatorOf("sess"); c != "site.example" {
		t.Fatalf("creatorOf(sess) = %q", c)
	}
	snap := b.snapshot()
	if len(snap) != 2 || snap["uid"] != "tracker.example" {
		t.Fatalf("snapshot = %v", snap)
	}
	// The snapshot is a copy: mutating it must not leak back.
	snap["uid"] = "evil.example"
	if c := b.creatorOf("uid"); c != "tracker.example" {
		t.Fatalf("snapshot mutation leaked into the dataset: %q", c)
	}
}

// TestBackgroundBufferedSendOutlivesLoop: after close, the buffered send
// can still succeed even though no loop will ever reply; snapshot and
// lookup must bail out via done instead of waiting on the reply forever.
func TestBackgroundBufferedSendOutlivesLoop(t *testing.T) {
	b := newBackground()
	b.close()
	// Give the loop goroutine a moment to observe done and exit, making
	// the send-succeeds-into-dead-buffer window deterministic.
	time.Sleep(10 * time.Millisecond)

	withTimeout(t, "snapshot", func() {
		if snap := b.snapshot(); len(snap) != 0 {
			t.Errorf("snapshot after close = %v, want empty", snap)
		}
	})
	withTimeout(t, "lookup", func() {
		if _, ok := b.lookup("uid"); ok {
			t.Error("lookup after close reported existence")
		}
	})
	withTimeout(t, "record", func() {
		// record is fire-and-forget but must not block once the 16-slot
		// buffer fills with no loop draining it.
		for i := 0; i < 64; i++ {
			b.record("k", "v")
		}
	})
	withTimeout(t, "double close", b.close)
}

// TestBackgroundCloseRacesRequests: requests racing a concurrent close
// must all return (empty results are fine; hangs and panics are not).
// Chiefly meaningful under the race detector, which CI runs on this
// package.
func TestBackgroundCloseRacesRequests(t *testing.T) {
	for i := 0; i < 50; i++ {
		b := newBackground()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				b.record("uid", "tracker.example")
				b.snapshot()
				b.lookup("uid")
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			b.close()
		}()
		close(start)
		withTimeout(t, "racing requests", wg.Wait)
	}
}
