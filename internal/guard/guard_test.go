package guard

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cookieguard/internal/browser"
	"cookieguard/internal/entity"
	"cookieguard/internal/netsim"
)

// guardedWeb builds a test site with setter/reader scripts from different
// tracker domains plus a site-owner script.
func guardedWeb(extra map[string]string) *netsim.Internet {
	in := netsim.New()
	in.RegisterFunc("www.shop.example", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			http.SetCookie(w, &http.Cookie{Name: "srv_pref", Value: "longvalue12345678"})
			w.Header().Set("Content-Type", "text/html")
			fmt.Fprint(w, extra["__html__"])
		case "/own.js":
			fmt.Fprint(w, extra["__own__"])
		default:
			http.NotFound(w, r)
		}
	})
	byHost := map[string]map[string]string{}
	for url, body := range extra {
		if strings.HasPrefix(url, "__") {
			continue
		}
		u := strings.TrimPrefix(url, "https://")
		slash := strings.IndexByte(u, '/')
		host, path := u[:slash], u[slash:]
		if byHost[host] == nil {
			byHost[host] = map[string]string{}
		}
		byHost[host][path] = body
	}
	for host, paths := range byHost {
		ps := paths
		in.RegisterFunc(host, func(w http.ResponseWriter, r *http.Request) {
			if b, ok := ps[r.URL.Path]; ok {
				fmt.Fprint(w, b)
				return
			}
			http.NotFound(w, r)
		})
	}
	in.RegisterFunc("collect.example", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	return in
}

// visitWithGuard loads the page with a fresh guard and returns both.
func visitWithGuard(t *testing.T, in *netsim.Internet, policy Policy) (*Guard, *browser.Browser, *browser.Page) {
	t.Helper()
	g := New(policy)
	t.Cleanup(g.Close)
	b, err := browser.New(browser.Options{
		Internet:         in,
		CookieMiddleware: []browser.CookieMiddleware{g.Middleware()},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.AttachBrowser(b)
	p, err := b.Visit("https://www.shop.example/")
	if err != nil {
		t.Fatal(err)
	}
	return g, b, p
}

const crossReadHTML = `<html><head>
<script src="https://setter.example/s.js"></script>
<script src="https://reader.example/r.js"></script>
<script src="/own.js"></script>
</head><body></body></html>`

func crossReadScripts() map[string]string {
	return map[string]string{
		"__html__":                    crossReadHTML,
		"https://setter.example/s.js": `set_cookie("_sid", "secretvalue1234567");`,
		"https://reader.example/r.js": `
let v = get_cookie("_sid");
if (v != null) { send("https://collect.example/x", {"sid": v}); }
let mine = get_cookie("_rdr");
if (mine == null) { set_cookie("_rdr", "readerown123456"); }
let back = get_cookie("_rdr");
if (back != null) { set_cookie("_rdr_visible", "1"); }
let srv = get_cookie("srv_pref");
if (srv != null) { set_cookie("_saw_srv", "1"); }`,
		"__own__": `
let all = get_all_cookies();
if (has(all, "_sid") && has(all, "_rdr") && has(all, "srv_pref")) {
  set_cookie("owner_sees_all", "1");
}`,
	}
}

func TestCrossDomainReadBlocked(t *testing.T) {
	g, b, p := visitWithGuard(t, guardedWeb(crossReadScripts()), DefaultPolicy())
	_ = p
	site := "https://www.shop.example/"

	// reader.example must not have seen setter.example's cookie.
	for _, r := range p.Requests {
		if strings.Contains(r.URL, "collect.example") && strings.Contains(r.URL, "secretvalue") {
			t.Fatal("cross-domain cookie exfiltrated despite guard")
		}
	}
	// But its own cookie remains visible.
	if b.Jar().Get(site, "_rdr_visible") == nil {
		t.Fatal("script cannot see its own cookie")
	}
	// And the server's first-party cookie is hidden from it.
	if b.Jar().Get(site, "_saw_srv") != nil {
		t.Fatal("third-party script saw HTTP first-party cookie")
	}
	// The filter decisions are logged.
	var reads int
	for _, ev := range g.Blocks() {
		if ev.Kind == BlockRead {
			reads++
		}
	}
	if reads == 0 {
		t.Fatal("no read-filter events logged")
	}
}

func TestSiteOwnerFullAccess(t *testing.T) {
	_, b, _ := visitWithGuard(t, guardedWeb(crossReadScripts()), DefaultPolicy())
	if b.Jar().Get("https://www.shop.example/", "owner_sees_all") == nil {
		t.Fatal("site-owner script must see all first-party cookies (§6.1)")
	}
}

func TestOwnerFullAccessDisabled(t *testing.T) {
	pol := DefaultPolicy()
	pol.OwnerFullAccess = false
	_, b, _ := visitWithGuard(t, guardedWeb(crossReadScripts()), pol)
	if b.Jar().Get("https://www.shop.example/", "owner_sees_all") != nil {
		t.Fatal("owner full access should be disabled")
	}
}

func TestCrossDomainOverwriteBlocked(t *testing.T) {
	scripts := map[string]string{
		"__html__":                    crossReadHTML,
		"https://setter.example/s.js": `set_cookie("_tid", "original12345678");`,
		"https://reader.example/r.js": `set_cookie("_tid", "hijacked99999999");`,
		"__own__":                     `let x = 1;`,
	}
	g, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	c := b.Jar().Get("https://www.shop.example/", "_tid")
	if c == nil || c.Value != "original12345678" {
		t.Fatalf("cookie = %+v; cross-domain overwrite must be blocked", c)
	}
	found := false
	for _, ev := range g.Blocks() {
		if ev.Kind == BlockWrite && ev.Name == "_tid" &&
			ev.Accessor == "reader.example" && ev.Creator == "setter.example" {
			found = true
		}
	}
	if !found {
		t.Fatalf("write block not logged: %+v", g.Blocks())
	}
}

func TestCrossDomainDeleteBlocked(t *testing.T) {
	scripts := map[string]string{
		"__html__":                    crossReadHTML,
		"https://setter.example/s.js": `set_cookie("_tid", "original12345678");`,
		"https://reader.example/r.js": `delete_cookie("_tid");`,
		"__own__":                     `let x = 1;`,
	}
	g, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	if b.Jar().Get("https://www.shop.example/", "_tid") == nil {
		t.Fatal("cross-domain delete must be blocked")
	}
	found := false
	for _, ev := range g.Blocks() {
		if ev.Kind == BlockDelete && ev.Name == "_tid" {
			found = true
		}
	}
	if !found {
		t.Fatalf("delete block not logged: %+v", g.Blocks())
	}
}

func TestSameDomainOverwriteAllowed(t *testing.T) {
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="https://setter.example/s.js"></script>
<script src="https://setter.example/s2.js"></script>
</head><body></body></html>`,
		"https://setter.example/s.js":  `set_cookie("_tid", "original12345678");`,
		"https://setter.example/s2.js": `set_cookie("_tid", "updated000000000");`,
		"__own__":                      ``,
	}
	_, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	c := b.Jar().Get("https://www.shop.example/", "_tid")
	if c == nil || c.Value != "updated000000000" {
		t.Fatalf("same-domain overwrite should pass: %+v", c)
	}
}

func TestInlineStrictDenied(t *testing.T) {
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="https://setter.example/s.js"></script>
<script>
let v = get_cookie("_sid");
if (v == null) { doc_set_cookie("inline_probe=1"); }
</script>
</head><body></body></html>`,
		"https://setter.example/s.js": `set_cookie("_sid", "secretvalue1234567");`,
		"__own__":                     ``,
	}
	g, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	// Strict mode: the inline read returned nothing AND the write was
	// denied too.
	if b.Jar().Get("https://www.shop.example/", "inline_probe") != nil {
		t.Fatal("inline write should be denied in strict mode")
	}
	var inline int
	for _, ev := range g.Blocks() {
		if ev.Kind == BlockInline {
			inline++
		}
	}
	if inline < 2 {
		t.Fatalf("inline denials = %d, want ≥ 2", inline)
	}
}

func TestInlineRelaxedTreatedFirstParty(t *testing.T) {
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="https://setter.example/s.js"></script>
<script>
let v = get_cookie("_sid");
if (v != null) { set_cookie("inline_saw_it", "1"); }
</script>
</head><body></body></html>`,
		"https://setter.example/s.js": `set_cookie("_sid", "secretvalue1234567");`,
		"__own__":                     ``,
	}
	pol := DefaultPolicy()
	pol.Inline = InlineRelaxed
	_, b, _ := visitWithGuard(t, guardedWeb(scripts), pol)
	// Relaxed: inline behaves as the site owner → full access.
	if b.Jar().Get("https://www.shop.example/", "inline_saw_it") == nil {
		t.Fatal("relaxed inline should see all cookies")
	}
}

func TestEntityWhitelistGroupsDomains(t *testing.T) {
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="https://setter.example/s.js"></script>
<script src="https://sibling.example/r.js"></script>
</head><body></body></html>`,
		"https://setter.example/s.js": `set_cookie("_tok", "sharedsecret12345");`,
		"https://sibling.example/r.js": `
let v = get_cookie("_tok");
if (v != null) { set_cookie("sibling_ok", "1"); }`,
		"__own__": ``,
	}

	// Without whitelist: blocked.
	_, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	if b.Jar().Get("https://www.shop.example/", "sibling_ok") != nil {
		t.Fatal("cross-domain read should be blocked without whitelist")
	}

	// With a whitelist grouping the two domains: allowed (§7.2).
	ents := entity.NewMap(map[string][]string{
		"PairCo": {"setter.example", "sibling.example"},
	})
	_, b2, _ := visitWithGuard(t, guardedWeb(scripts), WhitelistPolicy(ents))
	if b2.Jar().Get("https://www.shop.example/", "sibling_ok") == nil {
		t.Fatal("same-entity read should be allowed with whitelist")
	}
}

func TestWhitelistExtendsSiteOwnership(t *testing.T) {
	// The facebook.com/fbcdn.net case: a script from the site's CDN
	// sibling gets owner access under the whitelist.
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="/own.js"></script>
<script src="https://shop-cdn.example/w.js"></script>
</head><body></body></html>`,
		"__own__": `set_cookie("widget_state", "boot12345678");`,
		"https://shop-cdn.example/w.js": `
let st = get_cookie("widget_state");
if (st != null) { set_cookie("chat_ready", "1"); }`,
	}

	_, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	if b.Jar().Get("https://www.shop.example/", "chat_ready") != nil {
		t.Fatal("CDN sibling should be blocked without whitelist")
	}

	ents := entity.NewMap(map[string][]string{
		"ShopCo": {"shop.example", "shop-cdn.example"},
	})
	_, b2, _ := visitWithGuard(t, guardedWeb(scripts), WhitelistPolicy(ents))
	if b2.Jar().Get("https://www.shop.example/", "chat_ready") == nil {
		t.Fatal("whitelisted CDN sibling should boot")
	}
}

func TestCookieStoreFiltering(t *testing.T) {
	scripts := map[string]string{
		"__html__": `<html><head>
<script src="https://setter.example/s.js"></script>
<script src="https://reader.example/r.js"></script>
</head><body></body></html>`,
		"https://setter.example/s.js": `cookiestore_set("keep_alive", "val123456789", {"max_age": 600});`,
		"https://reader.example/r.js": `
let c = cookiestore_get("keep_alive");
if (c == null) { set_cookie("cs_hidden", "1"); }
let all = cookiestore_get_all();
let sawForeign = false;
for (rec in all) {
  if (rec["name"] == "keep_alive") { sawForeign = true; }
}
if (!sawForeign) { set_cookie("cs_all_filtered", "1"); }
cookiestore_delete("keep_alive");`,
		"__own__": ``,
	}
	_, b, _ := visitWithGuard(t, guardedWeb(scripts), DefaultPolicy())
	site := "https://www.shop.example/"
	if b.Jar().Get(site, "cs_hidden") == nil {
		t.Fatal("cookieStore.get should be filtered")
	}
	if b.Jar().Get(site, "cs_all_filtered") == nil {
		t.Fatal("cookieStore.getAll should be filtered")
	}
	if b.Jar().Get(site, "keep_alive") == nil {
		t.Fatal("cookieStore.delete should be blocked")
	}
}

func TestHTTPCookieOwnedBySite(t *testing.T) {
	// srv_pref is set by the site's server; third parties must not see
	// it, while the site script does (checked in TestSiteOwnerFullAccess
	// via owner_sees_all).
	g, _, _ := visitWithGuard(t, guardedWeb(crossReadScripts()), DefaultPolicy())
	// The dataset learned srv_pref's creator from the Set-Cookie header.
	if got := g.bg.creatorOf("srv_pref"); got != "shop.example" {
		t.Fatalf("srv_pref creator = %q", got)
	}
}

func TestPerOpOverheadCharged(t *testing.T) {
	// Compare two guarded visits differing only in per-op cost, so
	// blocking side effects (skipped beacons change network time too)
	// are held constant.
	scripts := crossReadScripts()
	in := guardedWeb(scripts)

	slow := DefaultPolicy()
	slow.PerOpOverheadMS = 5
	_, _, pSlow := visitWithGuard(t, in, slow)

	free := DefaultPolicy()
	free.PerOpOverheadMS = 0
	_, _, pFree := visitWithGuard(t, in, free)

	if pSlow.Timing.LoadEvent <= pFree.Timing.LoadEvent {
		t.Fatalf("guard overhead missing: slow=%v free=%v",
			pSlow.Timing.LoadEvent, pFree.Timing.LoadEvent)
	}
}

func TestCloseIdempotent(t *testing.T) {
	g := New(DefaultPolicy())
	g.Close()
	g.Close() // must not panic
	// Operations after close degrade gracefully.
	if got := g.bg.creatorOf("x"); got != "" {
		t.Fatalf("creatorOf after close = %q", got)
	}
	g.bg.record("x", "y") // no deadlock
}

func TestAssignmentHelpers(t *testing.T) {
	if assignmentName("a=1; Path=/") != "a" || assignmentName("=bad") != "" {
		t.Fatal("assignmentName broken")
	}
	if !isDeletion("a=; Max-Age=0") || !isDeletion("a=; Max-Age=-1") {
		t.Fatal("isDeletion should detect expiry idioms")
	}
	if isDeletion("a=1; Max-Age=600") || isDeletion("a=1") {
		t.Fatal("isDeletion false positives")
	}
}
