// Package analysis implements the paper's analysis framework (§4.4): it
// replays visit logs to attribute cookie ownership, detects cross-domain
// reads, overwrites, deletions, and exfiltration, and aggregates the
// results into every table and figure of the evaluation.
package analysis

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/base64"
	"encoding/hex"
	"sort"
	"strings"

	"cookieguard/internal/entity"
	"cookieguard/internal/instrument"
	"cookieguard/internal/stats"
	"cookieguard/internal/urlutil"
)

// CookieKey identifies a unique cookie pair: (name, owner domain). The
// owner is the eTLD+1 of the script (or server) that first set it on a
// site — the paper's "(cookie_name, domain of the script that set the
// cookie)" tuple (§5.2).
type CookieKey struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
}

// ActionKind is a cross-domain action category (Table 1 rows).
type ActionKind string

// Cross-domain action kinds.
const (
	ActExfiltration ActionKind = "exfiltration"
	ActOverwriting  ActionKind = "overwriting"
	ActDeleting     ActionKind = "deleting"
)

// Event is one detected cross-domain action. The JSON shape is stable:
// it is served verbatim by cookieguard.Server's per-site endpoints.
type Event struct {
	Site        string         `json:"site"`
	Kind        ActionKind     `json:"kind"`
	Cookie      CookieKey      `json:"cookie"`
	ActorScript string         `json:"actor_script,omitempty"` // script URL performing the action
	ActorDomain string         `json:"actor_domain,omitempty"`
	API         instrument.API `json:"api"`
	Destination string         `json:"destination,omitempty"` // exfiltration destination domain
	// Attribute-change flags for overwrites (§5.5).
	ChangedValue   bool `json:"changed_value,omitempty"`
	ChangedExpires bool `json:"changed_expires,omitempty"`
	ChangedDomain  bool `json:"changed_domain,omitempty"`
	ChangedPath    bool `json:"changed_path,omitempty"`
}

// Analyzer holds configuration for a run. It consumes visit logs either
// in one batch (Run) or incrementally (Observe per log, then Finalize),
// so a streaming pipeline can analyze each log as the crawl produces it
// and never materialize the full log set. An Analyzer is not safe for
// concurrent use; feed it from a single goroutine.
type Analyzer struct {
	Entities *entity.Map
	// IsTracker classifies script URLs (nil disables classification).
	IsTracker func(scriptURL, siteDomain string) bool
	// MinIdentifierLen is the candidate-identifier threshold (§4.4,
	// default 8).
	MinIdentifierLen int

	// st accumulates the in-progress run between Observe calls; Finalize
	// consumes it, so the Analyzer is reusable for a fresh run afterwards.
	st *runState
}

// runState is the accumulation state of one analysis run.
type runState struct {
	res *Results

	tpScriptTotal, tpCookieTotal, fpCookieTotal int
	trackerOcc, tpOcc                           int
	indirectTrackers                            int

	// vant accumulates per-vantage visit/failure counts and load-event
	// latency samples; the key "" is the implicit default vantage.
	vant map[string]*vantageAgg

	// pers accumulates per-persona retention and exfiltration deltas;
	// the key "" is the implicit persona-free crawl.
	pers map[string]*personaAgg

	// encMemo memoizes EncodedForms per identifier: crawls repeat the
	// same identifiers across reads, sites, and vantages, and the
	// md5/sha1/base64 derivations were a measurable allocation cost.
	encMemo map[string][]string

	// groups records one entry per analyzed observation — the slice of
	// res.Events it appended, keyed by (site, vantage, persona).
	// Finalize sorts the groups and rebuilds Events in that order, so
	// the finalized event sequence depends only on the observed log
	// multiset, never on observation order — the property that lets
	// shard-merged and completion-order-fed runs produce identical
	// Results.
	groups []evGroup
	// obsSeq counts observations; it tie-breaks duplicate (site,
	// vantage, persona) groups, which a real crawl never produces.
	obsSeq int

	// pairFirst records, per cookie pair, the canonically-first ensure
	// (smallest (site, vantage, persona, observation, in-observation
	// sequence)) — the ensure whose API the finalized PairInfo carries.
	// Tracking it explicitly, instead of relying on map-creation order,
	// is what keeps pair attribution observation-order-independent.
	pairFirst map[CookieKey]pairClaim

	// Per-observation scratch (valid between beginObservation and
	// endObservation).
	curSite, curVantage string
	curPersona          string
	curPers             *personaAgg
	curStart            int // len(res.Events) at observation start
	curEnsures          int // ensure-call sequence within the observation
	curClaims           map[CookieKey]pairClaim
}

// evGroup is one observation's event range, in canonical-sort terms.
type evGroup struct {
	site, vantage, persona string
	seq                    int // observation sequence (tie-break only)
	start, end             int // indices into res.Events before canonicalization
}

// pairClaim is one candidate attribution of a cookie pair's API: where
// (and in what order) an ensure of the pair happened.
type pairClaim struct {
	site, vantage, persona string
	obs                    int // observation sequence
	seq                    int // ensure sequence within the observation
	api                    instrument.API
}

// before reports whether claim a canonically precedes claim b: sorted by
// (site, vantage, persona) like the scheduler's index-sorted fold, then
// by observation and in-observation ensure order.
func (a pairClaim) before(b pairClaim) bool {
	if a.site != b.site {
		return a.site < b.site
	}
	if a.vantage != b.vantage {
		return a.vantage < b.vantage
	}
	if a.persona != b.persona {
		return a.persona < b.persona
	}
	if a.obs != b.obs {
		return a.obs < b.obs
	}
	return a.seq < b.seq
}

// newRunState returns an empty accumulation state.
func newRunState() *runState {
	return &runState{
		res: &Results{
			Pairs:       map[CookieKey]*PairInfo{},
			PairsByAPI:  map[instrument.API]int{},
			SiteActions: map[string]map[actionAPIKey]bool{},
			Vantages:    map[string]VantageStats{},
			Personas:    map[string]PersonaStats{},
			Failures: FailureStats{
				VisitFailures:   map[string]int{},
				RequestFailures: map[string]int{},
			},
		},
		vant:      map[string]*vantageAgg{},
		pers:      map[string]*personaAgg{},
		encMemo:   map[string][]string{},
		pairFirst: map[CookieKey]pairClaim{},
		curClaims: map[CookieKey]pairClaim{},
	}
}

// beginObservation opens the per-observation scratch for one complete
// visit log.
func (st *runState) beginObservation(site, vantage, persona string) {
	st.curSite, st.curVantage, st.curPersona = site, vantage, persona
	st.curPers = st.persona(persona)
	st.curStart = len(st.res.Events)
	st.curEnsures = 0
}

// persona returns (creating if needed) the named persona's accumulator.
func (st *runState) persona(name string) *personaAgg {
	pa := st.pers[name]
	if pa == nil {
		pa = &personaAgg{exfilPairs: map[CookieKey]bool{}}
		st.pers[name] = pa
	}
	return pa
}

// endObservation folds the observation's scratch into the run: its event
// range becomes a canonical-sort group and its pair claims compete for
// canonically-first attribution.
func (st *runState) endObservation() {
	if end := len(st.res.Events); end > st.curStart {
		st.groups = append(st.groups, evGroup{
			site: st.curSite, vantage: st.curVantage, persona: st.curPersona,
			seq: st.obsSeq, start: st.curStart, end: end,
		})
	}
	for key, c := range st.curClaims {
		if best, ok := st.pairFirst[key]; !ok || c.before(best) {
			st.pairFirst[key] = c
		}
	}
	clear(st.curClaims)
	st.obsSeq++
}

// ensurePair returns (creating if needed) the pair's accumulator and
// records the ensure as an attribution claim. Every pair-map touch of
// the replay goes through here, so pairFirst sees every candidate.
func (st *runState) ensurePair(key CookieKey, api instrument.API) *PairInfo {
	st.curEnsures++
	if _, ok := st.curClaims[key]; !ok {
		st.curClaims[key] = pairClaim{
			site: st.curSite, vantage: st.curVantage, persona: st.curPersona,
			obs: st.obsSeq, seq: st.curEnsures, api: api,
		}
	}
	p := st.res.Pairs[key]
	if p == nil {
		p = newPairInfo(key, api)
		st.res.Pairs[key] = p
	}
	return p
}

// vantageAgg is the in-progress per-vantage rollup.
type vantageAgg struct {
	visits, complete, failed int
	loadMs                   []float64
}

// personaAgg is the in-progress per-persona rollup: retention counts
// plus the tracking deltas the consent comparison is about — how many
// third-party cookies were created and how much exfiltration happened
// under this persona's consent state.
type personaAgg struct {
	visits, complete, failed int
	tpCookies                int
	exfilEvents              int
	exfilPairs               map[CookieKey]bool
}

// New returns an Analyzer with the default entity map.
func New() *Analyzer {
	return &Analyzer{Entities: entity.Default(), MinIdentifierLen: 8}
}

// Results aggregates everything the report generators need.
type Results struct {
	Summary    Summary
	Events     []Event
	Pairs      map[CookieKey]*PairInfo
	PairsByAPI map[instrument.API]int

	// Per-site action presence (for Table 1 and Figure 5).
	SiteActions map[string]map[actionAPIKey]bool

	// Failures is the crawl-failure rollup across every observed log —
	// including incomplete ones, which is where most failures live.
	Failures FailureStats

	// Vantages is the per-vantage rollup: visit/failure counts and the
	// load-event latency tail, keyed by VisitLog.Vantage ("" is the
	// implicit default vantage). A multi-vantage run feeds every
	// vantage's stream through one analyzer and compares the tails here
	// (VantageTable — the Figure 6 comparison across regions).
	Vantages map[string]VantageStats

	// Personas is the per-persona rollup, keyed by VisitLog.Persona
	// ("" is the implicit persona-free crawl): retention counts plus
	// the consent deltas — third-party cookie creations and
	// exfiltration volume under each consent state. A persona crawl
	// (accept vs reject vs dismiss) compares them here (PersonaTable).
	Personas map[string]PersonaStats
}

// PersonaStats summarizes one consent persona's crawl: how many visits
// it performed, kept, and lost, and the tracking it admitted — the
// third-party cookies created and the exfiltration events and unique
// exfiltrated cookie pairs observed under its consent state. On a
// CMP-enabled web the accept persona's TPCookies and ExfilPairs
// strictly exceed the reject persona's: rejected trackers never load,
// so their cookies and leaks never happen.
type PersonaStats struct {
	Visits   int `json:"visits"`
	Complete int `json:"complete"`
	Failed   int `json:"failed"` // fatal landing failures (incl. circuit-open sheds)

	// TPCookies counts third-party cookie creations (the retained
	// tracker-cookie volume); ExfilEvents counts detected exfiltration
	// events and ExfilPairs the unique cookie pairs they leaked.
	TPCookies   int `json:"tp_cookies"`
	ExfilEvents int `json:"exfil_events"`
	ExfilPairs  int `json:"exfil_pairs"`
}

// VantageStats summarizes one vantage point's crawl: how many visits it
// performed, kept, and lost, and the latency tail of its load-event
// milestones over complete visits. Quantiles are order-independent, so
// equal log multisets produce equal VantageStats at any worker count.
type VantageStats struct {
	Visits   int `json:"visits"`
	Complete int `json:"complete"`
	Failed   int `json:"failed"` // fatal landing failures (incl. circuit-open sheds)

	// Load-event latency tail over complete visits, in virtual ms.
	LoadMeanMs float64 `json:"load_mean_ms"`
	LoadP50Ms  float64 `json:"load_p50_ms"`
	LoadP90Ms  float64 `json:"load_p90_ms"`
	LoadP99Ms  float64 `json:"load_p99_ms"`
	LoadMaxMs  float64 `json:"load_max_ms"`
}

// FailureStats aggregates the failure taxonomy of a crawl: how many
// visits were lost outright and to what (VisitFailures, keyed by
// browser.FailureClass strings), how many retained visits were degraded,
// and the per-request failure and retry totals. A fault-free crawl of a
// fault-free web leaves every count at zero.
type FailureStats struct {
	VisitsFailed   int `json:"visits_failed"`   // visits with no usable landing document
	VisitsDegraded int `json:"visits_degraded"` // retained visits that lost a subresource or hit the deadline

	// VisitFailures counts visits by failure class: the fatal class of
	// each lost visit, plus "deadline" for retained visits whose budget
	// expired mid-visit — so its total can exceed VisitsFailed by
	// exactly the deadline-degraded count.
	VisitFailures   map[string]int `json:"visit_failures,omitempty"`
	RequestFailures map[string]int `json:"request_failures,omitempty"` // failure class → failed request count
	RequestsFailed  int            `json:"requests_failed"`            // total failed requests (all classes)
	Retries         int            `json:"retries"`                    // total retry attempts across all requests
}

// observe folds one visit log into the rollup.
func (f *FailureStats) observe(v *instrument.VisitLog) {
	if !v.OK {
		f.VisitsFailed++
		class := v.Failure
		if class == "" {
			class = "unclassified"
		}
		f.VisitFailures[class]++
	} else if v.Degraded() {
		f.VisitsDegraded++
		if v.Failure != "" { // mid-visit deadline on a retained visit
			f.VisitFailures[v.Failure]++
		}
	}
	for i := range v.Requests {
		r := &v.Requests[i]
		f.Retries += r.Retries
		if r.Failed {
			f.RequestsFailed++
			class := r.Failure
			if class == "" {
				class = "unclassified"
			}
			f.RequestFailures[class]++
		}
	}
}

type actionAPIKey struct {
	Kind ActionKind
	API  instrument.API
}

// PairInfo accumulates per-cookie-pair statistics.
type PairInfo struct {
	Key CookieKey
	API instrument.API

	ExfilEntities map[string]bool // entities whose scripts exfiltrated it
	DestEntities  map[string]bool
	OverwriterEnt map[string]bool
	DeleterEnt    map[string]bool

	ExfilDomains      map[string]bool // script domains (Figure 2)
	OverwriterDomains map[string]bool // Figure 8a
	DeleterDomains    map[string]bool // Figure 8b
}

func newPairInfo(key CookieKey, api instrument.API) *PairInfo {
	return &PairInfo{
		Key: key, API: api,
		ExfilEntities: map[string]bool{}, DestEntities: map[string]bool{},
		OverwriterEnt: map[string]bool{}, DeleterEnt: map[string]bool{},
		ExfilDomains:      map[string]bool{},
		OverwriterDomains: map[string]bool{},
		DeleterDomains:    map[string]bool{},
	}
}

// Summary carries the §5.1/5.2/5.6/§8 headline statistics. The JSON
// shape is stable: cookieguard.Server serves it on /v1/summary.
type Summary struct {
	SitesTotal    int `json:"sites_total"`
	SitesComplete int `json:"sites_complete"`

	SitesWithThirdParty   int     `json:"sites_with_third_party"`
	MeanTPScriptsPerSite  float64 `json:"mean_tp_scripts_per_site"`
	TrackerScriptShare    float64 `json:"tracker_script_share"` // of third-party script occurrences
	MeanTPCookiesPerSite  float64 `json:"mean_tp_cookies_per_site"`
	MeanFPCookiesPerSite  float64 `json:"mean_fp_cookies_per_site"`
	SitesUsingDocCookie   int     `json:"sites_using_doc_cookie"`
	SitesUsingCookieStore int     `json:"sites_using_cookie_store"`

	UniquePairsDocument    int `json:"unique_pairs_document"`
	UniquePairsCookieStore int `json:"unique_pairs_cookie_store"`

	DirectScripts        int     `json:"direct_scripts"`
	IndirectScripts      int     `json:"indirect_scripts"`
	IndirectTrackerShare float64 `json:"indirect_tracker_share"`

	SitesWithCrossDomainDOM int `json:"sites_with_cross_domain_dom"`
}

// Run analyzes the retained visit logs in one batch. It is implemented
// on the incremental path: every log is Observed in input order and the
// aggregates come from Finalize, so batch and streaming runs over the
// same log sequence produce identical Results.
func (a *Analyzer) Run(logs []instrument.VisitLog) *Results {
	for i := range logs {
		a.Observe(logs[i])
	}
	return a.Finalize()
}

// Observe folds one visit log into the in-progress run. Incomplete logs
// count toward SitesTotal but are otherwise skipped, exactly as in the
// batch path. Observe retains no reference to v once it returns, so a
// streaming caller holds O(1) logs per Observe.
func (a *Analyzer) Observe(v instrument.VisitLog) {
	st := a.state()
	st.res.Summary.SitesTotal++
	// The failure rollup sees every log — incomplete visits are exactly
	// the ones the failure table is about — before the retention skip.
	st.res.Failures.observe(&v)
	va := st.vant[v.Vantage]
	if va == nil {
		va = &vantageAgg{}
		st.vant[v.Vantage] = va
	}
	va.visits++
	pa := st.persona(v.Persona)
	pa.visits++
	if !v.OK {
		va.failed++
		pa.failed++
	}
	if !v.Complete() {
		return
	}
	va.complete++
	pa.complete++
	va.loadMs = append(va.loadMs, v.Timing.LoadEvent)
	st.res.Summary.SitesComplete++
	st.beginObservation(v.Site, v.Vantage, v.Persona)
	a.analyzeSite(&v, st)
	st.endObservation()
}

// Finalize computes the aggregate statistics over everything Observed so
// far and returns the Results, resetting the Analyzer for a fresh run.
//
// The finalized Results are canonical: events are ordered by (site,
// vantage) group — not by observation order — and each pair's API
// attribution comes from the canonically-first ensure, so any feed order
// of the same log multiset (streaming completion order, sorted batches,
// shard-merged fan-out) finalizes to identical Results.
func (a *Analyzer) Finalize() *Results {
	st := a.state()
	a.st = nil
	return finalizeState(st)
}

// Snapshot computes the aggregate Results over everything Observed so
// far without consuming the run: the Analyzer keeps accumulating and a
// later Observe/Finalize continues where it left off. The returned
// Results share nothing with the in-progress state, so callers may
// publish them to concurrent readers while observation continues.
func (a *Analyzer) Snapshot() *Results {
	dst := newRunState()
	if a.st != nil {
		foldState(dst, a.st)
	}
	return finalizeState(dst)
}

// finalizeState canonicalizes and aggregates an owned run state into its
// final Results. The state must not be used afterwards.
func finalizeState(st *runState) *Results {
	res := st.res
	// Canonical event order: groups sorted by (site, vantage, persona) —
	// the same total order cmd/crawl -sort emits — with the observation
	// sequence as a tie-break for duplicate keys (which a real crawl,
	// visiting each site once per crawl-plan unit, never produces).
	if len(st.groups) > 0 {
		sort.Slice(st.groups, func(i, j int) bool {
			gi, gj := &st.groups[i], &st.groups[j]
			if gi.site != gj.site {
				return gi.site < gj.site
			}
			if gi.vantage != gj.vantage {
				return gi.vantage < gj.vantage
			}
			if gi.persona != gj.persona {
				return gi.persona < gj.persona
			}
			return gi.seq < gj.seq
		})
		rebuilt := make([]Event, 0, len(res.Events))
		for _, g := range st.groups {
			rebuilt = append(rebuilt, res.Events[g.start:g.end]...)
		}
		res.Events = rebuilt
	}
	// Canonical pair attribution: the API of the canonically-first
	// ensure, independent of the order observations arrived in.
	for key, c := range st.pairFirst {
		if p := res.Pairs[key]; p != nil {
			p.API = c.api
		}
	}
	s := &res.Summary
	if s.SitesComplete > 0 {
		s.MeanTPScriptsPerSite = float64(st.tpScriptTotal) / float64(s.SitesComplete)
		s.MeanTPCookiesPerSite = float64(st.tpCookieTotal) / float64(s.SitesComplete)
		s.MeanFPCookiesPerSite = float64(st.fpCookieTotal) / float64(s.SitesComplete)
	}
	if st.tpOcc > 0 {
		s.TrackerScriptShare = float64(st.trackerOcc) / float64(st.tpOcc)
	}
	if s.IndirectScripts > 0 {
		s.IndirectTrackerShare = float64(st.indirectTrackers) / float64(s.IndirectScripts)
	}
	for _, p := range res.Pairs {
		res.PairsByAPI[p.API]++
	}
	s.UniquePairsDocument = res.PairsByAPI[instrument.APIDocument] + res.PairsByAPI[instrument.APIHTTP]
	s.UniquePairsCookieStore = res.PairsByAPI[instrument.APICookieStore]
	for name, va := range st.vant {
		vs := VantageStats{Visits: va.visits, Complete: va.complete, Failed: va.failed}
		if len(va.loadMs) > 0 {
			sort.Float64s(va.loadMs)
			vs.LoadMeanMs = stats.Mean(va.loadMs)
			vs.LoadP50Ms = stats.Quantile(va.loadMs, 0.50)
			vs.LoadP90Ms = stats.Quantile(va.loadMs, 0.90)
			vs.LoadP99Ms = stats.Quantile(va.loadMs, 0.99)
			vs.LoadMaxMs = va.loadMs[len(va.loadMs)-1]
		}
		res.Vantages[name] = vs
	}
	for name, pa := range st.pers {
		res.Personas[name] = PersonaStats{
			Visits: pa.visits, Complete: pa.complete, Failed: pa.failed,
			TPCookies:   pa.tpCookies,
			ExfilEvents: pa.exfilEvents,
			ExfilPairs:  len(pa.exfilPairs),
		}
	}
	return res
}

// state lazily creates the run state and applies config defaults, so the
// first Observe of a run fixes the effective configuration.
func (a *Analyzer) state() *runState {
	if a.st == nil {
		if a.MinIdentifierLen <= 0 {
			a.MinIdentifierLen = 8
		}
		if a.Entities == nil {
			a.Entities = entity.Default()
		}
		a.st = newRunState()
	}
	return a.st
}

// ownership tracks per-site cookie state during replay.
type cookieState struct {
	owner    string // eTLD+1 of the first setter
	ownerURL string
	api      instrument.API
	value    string
	maxAge   int64
	domain   string
	path     string
	live     bool
}

func (a *Analyzer) analyzeSite(v *instrument.VisitLog, st *runState) {
	res := st.res
	site := v.Site
	siteActs := res.SiteActions[site]
	if siteActs == nil {
		siteActs = map[actionAPIKey]bool{}
		res.SiteActions[site] = siteActs
	}

	// --- Script inventory (§5.1, §5.6) ---
	seenScript := map[string]bool{}
	usesDoc, usesStore := false, false
	for _, sr := range v.Scripts {
		if sr.Inline || sr.Failed {
			continue
		}
		if sr.Domain == "" || sr.Domain == site {
			continue
		}
		if seenScript[sr.URL] {
			continue
		}
		seenScript[sr.URL] = true
		st.tpScriptTotal++
		st.tpOcc++
		isTrk := a.IsTracker != nil && a.IsTracker(sr.URL, site)
		if isTrk {
			st.trackerOcc++
		}
		if sr.Direct() {
			res.Summary.DirectScripts++
		} else {
			res.Summary.IndirectScripts++
			if isTrk {
				st.indirectTrackers++
			}
		}
	}
	if len(seenScript) > 0 {
		res.Summary.SitesWithThirdParty++
	}

	// --- Cookie replay: ownership, manipulation ---
	state := map[string]*cookieState{}
	ensurePair := st.ensurePair

	for _, ev := range v.Cookies {
		if !ev.MainFrame {
			continue
		}
		switch ev.Op {
		case instrument.OpHTTPSet:
			cs := state[ev.Name]
			if cs == nil {
				owner := ev.Domain // response domain
				state[ev.Name] = &cookieState{owner: owner, api: instrument.APIHTTP,
					value: ev.Value, live: true}
				ensurePair(CookieKey{Name: ev.Name, Owner: owner}, instrument.APIHTTP)
				if owner == site {
					st.fpCookieTotal++
				} else {
					st.tpCookieTotal++
					st.curPers.tpCookies++
				}
			} else {
				cs.value = ev.Value
				cs.live = true
			}

		case instrument.OpWrite:
			usesDoc = usesDoc || ev.API == instrument.APIDocument
			usesStore = usesStore || ev.API == instrument.APICookieStore
			actor := a.actorDomain(ev, site)
			cs := state[ev.Name]
			if cs == nil || !cs.live {
				// creation (or resurrection): actor becomes owner
				state[ev.Name] = &cookieState{
					owner: actor, ownerURL: ev.ScriptURL, api: ev.API,
					value: ev.Value, maxAge: ev.MaxAge,
					domain: ev.Domain, path: ev.Path, live: true,
				}
				ensurePair(CookieKey{Name: ev.Name, Owner: actor}, ev.API)
				if actor == site {
					st.fpCookieTotal++
				} else {
					st.tpCookieTotal++
					st.curPers.tpCookies++
				}
				continue
			}
			// overwrite of a live cookie
			if actor != cs.owner && actor != "" {
				key := CookieKey{Name: ev.Name, Owner: cs.owner}
				p := ensurePair(key, cs.api)
				e := Event{
					Site: site, Kind: ActOverwriting, Cookie: key,
					ActorScript: ev.ScriptURL, ActorDomain: actor, API: ev.API,
					ChangedValue:   ev.Value != cs.value,
					ChangedExpires: ev.MaxAge != cs.maxAge,
					ChangedDomain:  ev.Domain != cs.domain && ev.Domain != "",
					ChangedPath:    ev.Path != cs.path && ev.Path != "",
				}
				res.Events = append(res.Events, e)
				p.OverwriterEnt[a.Entities.EntityOf(actor)] = true
				p.OverwriterDomains[actor] = true
				siteActs[actionAPIKey{ActOverwriting, cs.api}] = true
			}
			cs.value = ev.Value
			cs.maxAge = ev.MaxAge

		case instrument.OpDelete:
			usesDoc = usesDoc || ev.API == instrument.APIDocument
			usesStore = usesStore || ev.API == instrument.APICookieStore
			actor := a.actorDomain(ev, site)
			cs := state[ev.Name]
			if cs == nil || !cs.live {
				continue // deleting a non-existent cookie: no effect
			}
			if actor != cs.owner && actor != "" {
				key := CookieKey{Name: ev.Name, Owner: cs.owner}
				p := ensurePair(key, cs.api)
				res.Events = append(res.Events, Event{
					Site: site, Kind: ActDeleting, Cookie: key,
					ActorScript: ev.ScriptURL, ActorDomain: actor, API: ev.API,
				})
				p.DeleterEnt[a.Entities.EntityOf(actor)] = true
				p.DeleterDomains[actor] = true
				siteActs[actionAPIKey{ActDeleting, cs.api}] = true
			}
			cs.live = false

		case instrument.OpRead:
			usesDoc = usesDoc || ev.API == instrument.APIDocument
			usesStore = usesStore || ev.API == instrument.APICookieStore
		}
	}
	if usesDoc {
		res.Summary.SitesUsingDocCookie++
	}
	if usesStore {
		res.Summary.SitesUsingCookieStore++
	}

	// --- Exfiltration (§4.4) ---
	a.detectExfiltration(v, site, state, st, siteActs)

	// --- Cross-domain DOM modification (§8 pilot) ---
	for _, m := range v.Mutations {
		if instrument.MutationCrossDomain(m, site) {
			res.Summary.SitesWithCrossDomainDOM++
			break
		}
	}
}

// actorDomain resolves the acting script's eTLD+1; inline scripts are
// unattributable and the page itself acts as the site.
func (a *Analyzer) actorDomain(ev instrument.CookieEvent, site string) string {
	if ev.ScriptDomain != "" {
		return ev.ScriptDomain
	}
	if ev.Inline {
		return "" // unattributable
	}
	return site
}

// detectExfiltration implements the identifier pipeline: split cookie
// values on non-alphanumeric delimiters, keep candidates ≥ MinIdentifierLen,
// derive raw/Base64/MD5/SHA1 forms, and match them against the query
// strings of outbound requests initiated by main-frame scripts.
func (a *Analyzer) detectExfiltration(v *instrument.VisitLog, site string,
	state map[string]*cookieState, st *runState, siteActs map[actionAPIKey]bool) {
	res := st.res

	// Tokens of the page URL are not identifiers: cookies often embed
	// the page location (e.g. Marketo's _mch token), and every beacon
	// reports the page URL, so URL-derived segments would match
	// everywhere without carrying any user-specific information.
	urlTokens := map[string]bool{}
	for _, tok := range ExtractIdentifiers(v.URL, a.MinIdentifierLen) {
		urlTokens[tok] = true
	}

	// Candidate identifiers per cookie.
	type candidate struct {
		key   CookieKey
		api   instrument.API
		forms []string
	}
	var candidates []candidate
	for name, cs := range state {
		if cs.value == "" {
			continue
		}
		ids := ExtractIdentifiers(cs.value, a.MinIdentifierLen)
		if len(ids) == 0 {
			continue
		}
		var forms []string
		for _, id := range ids {
			if urlTokens[id] {
				continue
			}
			forms = append(forms, a.encodedForms(st, id)...)
		}
		candidates = append(candidates, candidate{
			key:   CookieKey{Name: name, Owner: cs.owner},
			api:   cs.api,
			forms: forms,
		})
	}
	if len(candidates) == 0 {
		return
	}
	// state is a map, so candidate order (and with it Event order) would
	// vary run to run; cookie names are unique per site, so sorting on
	// the name makes repeated runs over the same logs byte-identical.
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].key.Name < candidates[j].key.Name
	})

	for _, req := range v.Requests {
		if !req.MainFrame || req.InitiatorScript == "" {
			continue
		}
		query := urlutil.QueryString(req.URL)
		if query == "" {
			continue
		}
		// decoded values too: encodings may be %-escaped in the query
		decoded := strings.Join(urlutil.QueryValues(req.URL), "\n")
		destDomain := urlutil.RegistrableDomain(req.URL)
		actorDomain := req.InitiatorDomain

		// Tokenize once: short identifier forms must match a whole
		// query token; only long forms (≥ 12 chars, e.g. Base64 and
		// hash encodings) may match as substrings. Plain containment
		// would false-positive on timestamps, where one cookie's
		// seconds-resolution value is a prefix of another script's
		// millisecond timestamp.
		tokens := map[string]bool{}
		for _, tok := range ExtractIdentifiers(query, a.MinIdentifierLen) {
			tokens[tok] = true
		}
		for _, tok := range ExtractIdentifiers(decoded, a.MinIdentifierLen) {
			tokens[tok] = true
		}

		for _, c := range candidates {
			if actorDomain == "" || actorDomain == c.key.Owner {
				continue // authorized (same-domain) exfiltration
			}
			if destDomain == c.key.Owner {
				continue // sent back to the owner: not a third-party leak
			}
			hit := false
			for _, f := range c.forms {
				if tokens[f] {
					hit = true
					break
				}
				if len(f) >= 12 && (strings.Contains(query, f) || strings.Contains(decoded, f)) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			p := st.ensurePair(c.key, c.api)
			res.Events = append(res.Events, Event{
				Site: site, Kind: ActExfiltration, Cookie: c.key,
				ActorScript: req.InitiatorScript, ActorDomain: actorDomain,
				API: c.api, Destination: destDomain,
			})
			st.curPers.exfilEvents++
			st.curPers.exfilPairs[c.key] = true
			actorEnt := a.Entities.EntityOf(actorDomain)
			ownerEnt := a.Entities.EntityOf(c.key.Owner)
			if actorEnt != ownerEnt {
				p.ExfilEntities[actorEnt] = true
			}
			p.DestEntities[a.Entities.EntityOf(destDomain)] = true
			p.ExfilDomains[actorDomain] = true
			siteActs[actionAPIKey{ActExfiltration, c.api}] = true
		}
	}
}

// ExtractIdentifiers splits a cookie value on non-alphanumeric delimiters
// and returns the segments of at least minLen characters (§4.4).
func ExtractIdentifiers(value string, minLen int) []string {
	var out []string
	start := -1
	for i := 0; i < len(value); i++ {
		c := value[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
		} else {
			if start >= 0 && i-start >= minLen {
				out = append(out, value[start:i])
			}
			start = -1
		}
	}
	if start >= 0 && len(value)-start >= minLen {
		out = append(out, value[start:])
	}
	return out
}

// encMemoMax caps the per-run identifier-encoding memo; the distinct
// identifier population of a crawl is far smaller (cookie values repeat
// across reads, sites, and vantages), so the cap is purely defensive.
const encMemoMax = 1 << 17

// encodedForms is EncodedForms memoized per run: the same identifier is
// encoded once per analysis run instead of once per observation. The
// returned slice is shared and must not be mutated — callers only
// append it into their own form lists.
func (a *Analyzer) encodedForms(st *runState, id string) []string {
	if f, ok := st.encMemo[id]; ok {
		return f
	}
	f := EncodedForms(id)
	if len(st.encMemo) < encMemoMax {
		st.encMemo[id] = f
	}
	return f
}

// EncodedForms returns the matchable representations of an identifier:
// raw, Base64 (padding stripped — delimiters would split it anyway), MD5
// hex, and SHA1 hex (§4.4).
func EncodedForms(id string) []string {
	bid := []byte(id)
	b64 := strings.TrimRight(base64.StdEncoding.EncodeToString(bid), "=")
	m := md5.Sum(bid)
	s := sha1.Sum(bid)
	return []string{id, b64, hex.EncodeToString(m[:]), hex.EncodeToString(s[:])}
}

// SortedPairs returns pair infos ordered by a metric, descending.
func SortedPairs(pairs map[CookieKey]*PairInfo, metric func(*PairInfo) int) []*PairInfo {
	out := make([]*PairInfo, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := metric(out[i]), metric(out[j])
		if mi != mj {
			return mi > mj
		}
		if out[i].Key.Name != out[j].Key.Name {
			return out[i].Key.Name < out[j].Key.Name
		}
		return out[i].Key.Owner < out[j].Key.Owner
	})
	return out
}

// TopEntities returns up to k entity names sorted alphabetically (used
// for the "Top 3" columns; deterministic presentation).
func TopEntities(set map[string]bool, k int) []string {
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}
