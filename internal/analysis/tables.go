package analysis

import (
	"sort"

	"cookieguard/internal/instrument"
	"cookieguard/internal/stats"
)

// Table1Row is one row of Table 1: the prevalence of a cross-domain
// action for one cookie API. The JSON shape is stable: served by
// cookieguard.Server on /v1/tables/actions.
type Table1Row struct {
	API           instrument.API `json:"api"`
	Action        ActionKind     `json:"action"`
	PctOfWebsites float64        `json:"pct_of_websites"`
	PctOfCookies  float64        `json:"pct_of_cookies"`
	CookieCount   int            `json:"cookie_count"`
}

// Table1 computes the prevalence of cross-domain cookie actions across
// websites and affected unique cookie pairs.
func (r *Results) Table1() []Table1Row {
	apis := []instrument.API{instrument.APIDocument, instrument.APICookieStore}
	actions := []ActionKind{ActExfiltration, ActOverwriting, ActDeleting}

	// Pair denominators per API (document.cookie pairs include HTTP-set
	// cookies: they live in the same jar and are script-readable).
	pairTotals := map[instrument.API]int{}
	for _, p := range r.Pairs {
		api := p.API
		if api == instrument.APIHTTP {
			api = instrument.APIDocument
		}
		pairTotals[api]++
	}

	// Affected pairs per (api, action).
	type aaKey struct {
		api instrument.API
		act ActionKind
	}
	affected := map[aaKey]int{}
	for _, p := range r.Pairs {
		api := p.API
		if api == instrument.APIHTTP {
			api = instrument.APIDocument
		}
		if len(p.ExfilDomains) > 0 {
			affected[aaKey{api, ActExfiltration}]++
		}
		if len(p.OverwriterDomains) > 0 {
			affected[aaKey{api, ActOverwriting}]++
		}
		if len(p.DeleterDomains) > 0 {
			affected[aaKey{api, ActDeleting}]++
		}
	}

	// Site counts per (api, action): normalize APIs per site first so a
	// site acting on both an HTTP-set and a script-set cookie counts
	// once for document.cookie.
	siteCounts := map[aaKey]int{}
	for _, acts := range r.SiteActions {
		norm := map[aaKey]bool{}
		for k := range acts {
			api := k.API
			if api == instrument.APIHTTP {
				api = instrument.APIDocument
			}
			norm[aaKey{api, k.Kind}] = true
		}
		for k := range norm {
			siteCounts[k]++
		}
	}

	var rows []Table1Row
	for _, api := range apis {
		for _, act := range actions {
			k := aaKey{api, act}
			rows = append(rows, Table1Row{
				API:           api,
				Action:        act,
				PctOfWebsites: stats.Percent(siteCounts[k], r.Summary.SitesComplete),
				PctOfCookies:  stats.Percent(affected[k], pairTotals[api]),
				CookieCount:   affected[k],
			})
		}
	}
	return rows
}

// Table2Row is one row of Table 2: a frequently exfiltrated cookie pair.
type Table2Row struct {
	Cookie           CookieKey
	ExfilEntities    int
	DestEntities     int
	TopExfilEntities []string
	TopDestEntities  []string
}

// Table2 returns the top-k exfiltrated cookie pairs sorted by the number
// of destination entities (the paper's ordering).
func (r *Results) Table2(k int) []Table2Row {
	pairs := SortedPairs(r.Pairs, func(p *PairInfo) int { return len(p.DestEntities) })
	var rows []Table2Row
	for _, p := range pairs {
		if len(p.ExfilDomains) == 0 {
			continue
		}
		rows = append(rows, Table2Row{
			Cookie:           p.Key,
			ExfilEntities:    len(p.ExfilEntities),
			DestEntities:     len(p.DestEntities),
			TopExfilEntities: TopEntities(p.ExfilEntities, 3),
			TopDestEntities:  TopEntities(p.DestEntities, 3),
		})
		if len(rows) == k {
			break
		}
	}
	return rows
}

// DomainCount pairs a script domain with a unique-cookie count (Figures 2
// and 8).
type DomainCount struct {
	Domain     string
	Cookies    int
	PctOfPairs float64
}

// topDomains inverts pair→domains into domain→pair counts.
func (r *Results) topDomains(k int, domainsOf func(*PairInfo) map[string]bool) []DomainCount {
	counts := map[string]int{}
	for _, p := range r.Pairs {
		for d := range domainsOf(p) {
			counts[d]++
		}
	}
	out := make([]DomainCount, 0, len(counts))
	total := len(r.Pairs)
	for d, c := range counts {
		out = append(out, DomainCount{Domain: d, Cookies: c, PctOfPairs: stats.Percent(c, total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cookies != out[j].Cookies {
			return out[i].Cookies > out[j].Cookies
		}
		return out[i].Domain < out[j].Domain
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Fig2TopExfiltrators returns the top-k script domains by unique cookies
// exfiltrated (Figure 2).
func (r *Results) Fig2TopExfiltrators(k int) []DomainCount {
	return r.topDomains(k, func(p *PairInfo) map[string]bool { return p.ExfilDomains })
}

// Fig8TopOverwriters returns the top-k overwriting domains (Figure 8a).
func (r *Results) Fig8TopOverwriters(k int) []DomainCount {
	return r.topDomains(k, func(p *PairInfo) map[string]bool { return p.OverwriterDomains })
}

// Fig8TopDeleters returns the top-k deleting domains (Figure 8b).
func (r *Results) Fig8TopDeleters(k int) []DomainCount {
	return r.topDomains(k, func(p *PairInfo) map[string]bool { return p.DeleterDomains })
}

// Table5Row is one row of Table 5: a frequently manipulated cookie pair.
type Table5Row struct {
	Manipulation ActionKind
	Cookie       CookieKey
	Entities     int
	TopEntities  []string
}

// Table5 returns the top-k overwritten and top-k deleted cookie pairs.
func (r *Results) Table5(k int) []Table5Row {
	var rows []Table5Row
	ow := SortedPairs(r.Pairs, func(p *PairInfo) int { return len(p.OverwriterEnt) })
	for _, p := range ow {
		if len(p.OverwriterEnt) == 0 || len(rows) >= k {
			break
		}
		rows = append(rows, Table5Row{
			Manipulation: ActOverwriting, Cookie: p.Key,
			Entities:    len(p.OverwriterEnt),
			TopEntities: TopEntities(p.OverwriterEnt, 3),
		})
	}
	n := len(rows)
	del := SortedPairs(r.Pairs, func(p *PairInfo) int { return len(p.DeleterEnt) })
	for _, p := range del {
		if len(p.DeleterEnt) == 0 || len(rows) >= n+k {
			break
		}
		rows = append(rows, Table5Row{
			Manipulation: ActDeleting, Cookie: p.Key,
			Entities:    len(p.DeleterEnt),
			TopEntities: TopEntities(p.DeleterEnt, 3),
		})
	}
	return rows
}

// OverwriteAttrStats reports the share of overwrite events that changed
// each cookie attribute (§5.5: value 85.3%, expires 69.4%, domain 6.0%,
// path 1.2%).
type OverwriteAttrStats struct {
	Events     int
	PctValue   float64
	PctExpires float64
	PctDomain  float64
	PctPath    float64
}

// OverwriteAttrs computes the attribute-change distribution.
func (r *Results) OverwriteAttrs() OverwriteAttrStats {
	var s OverwriteAttrStats
	var val, exp, dom, path int
	for _, e := range r.Events {
		if e.Kind != ActOverwriting {
			continue
		}
		s.Events++
		if e.ChangedValue {
			val++
		}
		if e.ChangedExpires {
			exp++
		}
		if e.ChangedDomain {
			dom++
		}
		if e.ChangedPath {
			path++
		}
	}
	s.PctValue = stats.Percent(val, s.Events)
	s.PctExpires = stats.Percent(exp, s.Events)
	s.PctDomain = stats.Percent(dom, s.Events)
	s.PctPath = stats.Percent(path, s.Events)
	return s
}

// FailureRow is one row of the crawl failure table: a failure class at
// one scope ("visit" = fatal landing failures, "request" = degraded
// subresource/script/frame/beacon fetches).
type FailureRow struct {
	Scope string `json:"scope"`
	Class string `json:"class"`
	Count int    `json:"count"`
}

// FailureTable flattens the failure rollup into deterministic rows:
// visit-scope classes first, then request-scope, each sorted by class
// name so repeated runs over the same logs render identically.
func (r *Results) FailureTable() []FailureRow {
	var rows []FailureRow
	appendScope := func(scope string, counts map[string]int) {
		classes := make([]string, 0, len(counts))
		for c := range counts {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			rows = append(rows, FailureRow{Scope: scope, Class: c, Count: counts[c]})
		}
	}
	appendScope("visit", r.Failures.VisitFailures)
	appendScope("request", r.Failures.RequestFailures)
	return rows
}

// VantageRow is one row of the per-vantage comparison table: a vantage
// point's retention and load-event latency tail (the Figure 6
// comparison across regions).
type VantageRow struct {
	Vantage string `json:"vantage"`
	VantageStats
}

// VantageTable flattens the per-vantage rollup into rows sorted by
// vantage name (the default vantage, keyed "", sorts first and renders
// as "(default)").
func (r *Results) VantageTable() []VantageRow {
	names := make([]string, 0, len(r.Vantages))
	for n := range r.Vantages {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]VantageRow, 0, len(names))
	for _, n := range names {
		rows = append(rows, VantageRow{Vantage: n, VantageStats: r.Vantages[n]})
	}
	return rows
}

// PersonaRow is one row of the per-persona comparison table: a consent
// persona's retention and the tracking its consent state admitted —
// the accept vs reject vs dismiss delta in retained third-party
// cookies and exfiltration.
type PersonaRow struct {
	Persona string `json:"persona"`
	PersonaStats
}

// PersonaTable flattens the per-persona rollup into rows sorted by
// persona name (the implicit persona-free crawl, keyed "", sorts first
// and renders as "(none)").
func (r *Results) PersonaTable() []PersonaRow {
	names := make([]string, 0, len(r.Personas))
	for n := range r.Personas {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([]PersonaRow, 0, len(names))
	for _, n := range names {
		rows = append(rows, PersonaRow{Persona: n, PersonaStats: r.Personas[n]})
	}
	return rows
}

// SitePct returns the percentage of complete sites exhibiting an action
// on document.cookie-visible cookies (Figure 5's bars).
func (r *Results) SitePct(kind ActionKind) float64 {
	n := 0
	for _, acts := range r.SiteActions {
		hit := false
		for k := range acts {
			if k.Kind == kind {
				hit = true
				break
			}
		}
		if hit {
			n++
		}
	}
	return stats.Percent(n, r.Summary.SitesComplete)
}
