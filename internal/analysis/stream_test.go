package analysis

import (
	"reflect"
	"testing"

	"cookieguard/internal/instrument"
)

// streamFixture builds a varied log sequence: cross-domain overwrite,
// delete, exfiltration, an HTTP-set cookie, and an incomplete visit.
func streamFixture() []instrument.VisitLog {
	v1 := baseLog()
	v1.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_ga", "GA1.1.444332364.1746838827", setterJS, 3600),
		writeEv(instrument.APIDocument, "_ga", "GA1.1.999999999.1746838827", readerJS, 7200),
		writeEv(instrument.APICookieStore, "cs_id", "csvalue1234567", setterJS, 600),
	}
	v1.Requests = append(v1.Requests, instrument.RequestEvent{
		URL:             "https://px.dest.example/t?ga=NDQ0MzMyMzY0",
		Kind:            "beacon",
		InitiatorScript: readerJS,
		InitiatorDomain: "other.example",
		MainFrame:       true,
	})

	v2 := baseLog()
	v2.Site = "news.example"
	v2.URL = "https://www.news.example/"
	v2.Cookies = []instrument.CookieEvent{
		{Op: instrument.OpHTTPSet, API: instrument.APIHTTP, Name: "srv",
			Value: "serverval12345678", Domain: "news.example", MainFrame: true},
		writeEv(instrument.APIDocument, "srv", "clobbered12345678", readerJS, 60),
		deleteEv(instrument.APIDocument, "srv", setterJS),
	}

	incomplete := instrument.VisitLog{Site: "dead.example", OK: false}

	return []instrument.VisitLog{v1, incomplete, v2}
}

// TestObserveFinalizeMatchesRun is the streaming-equivalence contract:
// folding logs in one at a time must produce exactly the Results of the
// batch Run over the same sequence.
func TestObserveFinalizeMatchesRun(t *testing.T) {
	logs := streamFixture()

	batch := New().Run(logs)

	inc := New()
	for _, v := range logs {
		inc.Observe(v)
	}
	streaming := inc.Finalize()

	if !reflect.DeepEqual(batch, streaming) {
		t.Fatalf("streaming Results diverge from batch:\nbatch:     %+v\nstreaming: %+v", batch, streaming)
	}
	if len(batch.Events) == 0 {
		t.Fatal("fixture produced no events; equality check is vacuous")
	}
}

// TestRunDeterministic guards the sorted-candidate fix: repeated runs
// over the same logs must order Events identically.
func TestRunDeterministic(t *testing.T) {
	logs := streamFixture()
	first := New().Run(logs)
	for i := 0; i < 10; i++ {
		if again := New().Run(logs); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
}

// TestAnalyzerReusableAfterFinalize: Finalize resets the analyzer, so a
// second run starts from scratch instead of accumulating.
func TestAnalyzerReusableAfterFinalize(t *testing.T) {
	logs := streamFixture()
	an := New()
	first := an.Run(logs)
	second := an.Run(logs)
	if first.Summary.SitesTotal != second.Summary.SitesTotal {
		t.Fatalf("second run accumulated: %d vs %d sites",
			first.Summary.SitesTotal, second.Summary.SitesTotal)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("reused analyzer produced different Results")
	}
}

// TestFinalizeWithoutObserve yields an empty, well-formed Results.
func TestFinalizeWithoutObserve(t *testing.T) {
	res := New().Finalize()
	if res.Summary.SitesTotal != 0 || len(res.Pairs) != 0 || len(res.Events) != 0 {
		t.Fatalf("empty finalize not empty: %+v", res)
	}
	if res.Pairs == nil || res.PairsByAPI == nil || res.SiteActions == nil {
		t.Fatal("maps not initialized")
	}
}
