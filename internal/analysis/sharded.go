package analysis

import (
	"sync"

	"cookieguard/internal/instrument"
)

// foldState accumulates src into dst by value: counters sum, sets union,
// event groups and attribution claims carry over with their observation
// sequences offset past dst's. Nothing of src is retained by reference
// beyond immutable strings, so dst stays independent of later src
// mutation. Every fold operation is commutative across distinct (site,
// vantage) keys, and finalizeState canonicalizes the one order-sensitive
// structure (Events), so folding shards in any fixed order produces the
// same finalized Results.
func foldState(dst, src *runState) {
	obsBase := dst.obsSeq
	evBase := len(dst.res.Events)
	dst.res.Events = append(dst.res.Events, src.res.Events...)
	for _, g := range src.groups {
		g.seq += obsBase
		g.start += evBase
		g.end += evBase
		dst.groups = append(dst.groups, g)
	}
	dst.obsSeq += src.obsSeq

	for key, c := range src.pairFirst {
		c.obs += obsBase
		if best, ok := dst.pairFirst[key]; !ok || c.before(best) {
			dst.pairFirst[key] = c
		}
	}

	ds, ss := &dst.res.Summary, &src.res.Summary
	ds.SitesTotal += ss.SitesTotal
	ds.SitesComplete += ss.SitesComplete
	ds.SitesWithThirdParty += ss.SitesWithThirdParty
	ds.SitesUsingDocCookie += ss.SitesUsingDocCookie
	ds.SitesUsingCookieStore += ss.SitesUsingCookieStore
	ds.DirectScripts += ss.DirectScripts
	ds.IndirectScripts += ss.IndirectScripts
	ds.SitesWithCrossDomainDOM += ss.SitesWithCrossDomainDOM
	dst.tpScriptTotal += src.tpScriptTotal
	dst.tpCookieTotal += src.tpCookieTotal
	dst.fpCookieTotal += src.fpCookieTotal
	dst.trackerOcc += src.trackerOcc
	dst.tpOcc += src.tpOcc
	dst.indirectTrackers += src.indirectTrackers

	for key, sp := range src.res.Pairs {
		dp := dst.res.Pairs[key]
		if dp == nil {
			dp = newPairInfo(key, sp.API)
			dst.res.Pairs[key] = dp
		}
		unionInto(dp.ExfilEntities, sp.ExfilEntities)
		unionInto(dp.DestEntities, sp.DestEntities)
		unionInto(dp.OverwriterEnt, sp.OverwriterEnt)
		unionInto(dp.DeleterEnt, sp.DeleterEnt)
		unionInto(dp.ExfilDomains, sp.ExfilDomains)
		unionInto(dp.OverwriterDomains, sp.OverwriterDomains)
		unionInto(dp.DeleterDomains, sp.DeleterDomains)
	}

	for site, acts := range src.res.SiteActions {
		da := dst.res.SiteActions[site]
		if da == nil {
			da = make(map[actionAPIKey]bool, len(acts))
			dst.res.SiteActions[site] = da
		}
		for k := range acts {
			da[k] = true
		}
	}

	df, sf := &dst.res.Failures, &src.res.Failures
	df.VisitsFailed += sf.VisitsFailed
	df.VisitsDegraded += sf.VisitsDegraded
	df.RequestsFailed += sf.RequestsFailed
	df.Retries += sf.Retries
	for class, n := range sf.VisitFailures {
		df.VisitFailures[class] += n
	}
	for class, n := range sf.RequestFailures {
		df.RequestFailures[class] += n
	}

	for name, sva := range src.vant {
		dva := dst.vant[name]
		if dva == nil {
			dva = &vantageAgg{}
			dst.vant[name] = dva
		}
		dva.visits += sva.visits
		dva.complete += sva.complete
		dva.failed += sva.failed
		dva.loadMs = append(dva.loadMs, sva.loadMs...)
	}

	for name, spa := range src.pers {
		dpa := dst.persona(name)
		dpa.visits += spa.visits
		dpa.complete += spa.complete
		dpa.failed += spa.failed
		dpa.tpCookies += spa.tpCookies
		dpa.exfilEvents += spa.exfilEvents
		for key := range spa.exfilPairs {
			dpa.exfilPairs[key] = true
		}
	}
}

func unionInto(dst, src map[string]bool) {
	for k := range src {
		dst[k] = true
	}
}

// Merge folds independently accumulated Analyzers into one finalized
// Results, equivalent byte for byte to a single Analyzer that Observed
// the union of their logs (in any order — the canonical finalize sorts
// event groups by (site, vantage, persona) the way the scheduler's
// index-sorted fold orders outcomes). Merge reads the shards without consuming them;
// it must not run concurrently with Observe calls on them (Sharded
// provides the locked variant).
func Merge(shards ...*Analyzer) *Results {
	dst := newRunState()
	for _, a := range shards {
		if a == nil || a.st == nil {
			continue
		}
		foldState(dst, a.st)
	}
	return finalizeState(dst)
}

// Sharded fans the incremental analysis out over n independent Analyzer
// shards so concurrent Observe calls never contend: each worker owns a
// shard index and feeds it without touching the others. A deterministic
// merge (Merge semantics) folds the shards into Results that are
// byte-identical to a single Analyzer over the same logs, at any shard
// or worker count, clean and under faults.
type Sharded struct {
	shards []*Analyzer
	// mus serializes each shard between its owning worker and the
	// snapshotter; distinct shards never share a lock, so Observe calls
	// on distinct shards proceed in parallel uncontended.
	mus []sync.Mutex
}

// NewSharded returns a Sharded analyzer of n shards (minimum 1), each
// configured by the supplied hook (nil for defaults) — the hook runs
// once per shard, so per-shard state like a tracker classifier is not
// shared across workers.
func NewSharded(n int, configure func(*Analyzer)) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Analyzer, n), mus: make([]sync.Mutex, n)}
	for i := range s.shards {
		an := New()
		if configure != nil {
			configure(an)
		}
		s.shards[i] = an
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Observe folds one visit log into shard i (mod the shard count). Calls
// on distinct shards are safe concurrently and contention-free; calls on
// the same shard serialize on that shard's lock only.
func (s *Sharded) Observe(i int, v instrument.VisitLog) {
	i %= len(s.shards)
	s.mus[i].Lock()
	s.shards[i].Observe(v)
	s.mus[i].Unlock()
}

// Snapshot merges the shards into finalized Results without consuming
// them: observation continues afterwards. Each shard is locked only for
// the duration of its own copy-fold, so concurrent Observe calls on
// other shards proceed; the returned Results share no state with the
// shards and may be published to concurrent readers.
func (s *Sharded) Snapshot() *Results {
	dst := newRunState()
	for i, a := range s.shards {
		s.mus[i].Lock()
		if a.st != nil {
			foldState(dst, a.st)
		}
		s.mus[i].Unlock()
	}
	return finalizeState(dst)
}

// Finalize merges the shards into finalized Results and resets every
// shard for a fresh run, like Analyzer.Finalize. It must not run
// concurrently with Observe.
func (s *Sharded) Finalize() *Results {
	res := Merge(s.shards...)
	for _, a := range s.shards {
		a.st = nil
	}
	return res
}
