package analysis

import (
	"encoding/json"
	"sort"

	"cookieguard/internal/instrument"
)

// This file defines the stable JSON shapes cookieguard.Server serves.
// Results itself holds maps with struct keys (not JSON-marshalable) and
// set-maps whose natural encoding is noisy; the row types here flatten
// them into deterministic, sorted encodings — the same log multiset
// always produces the same bytes, which is what lets the server cache
// one encoding per snapshot index and lets tests compare whole Results
// by byte equality.

// PairRow is one cookie pair's aggregate, with every set flattened to a
// sorted list.
type PairRow struct {
	Name  string         `json:"name"`
	Owner string         `json:"owner"`
	API   instrument.API `json:"api"`

	ExfilEntities     []string `json:"exfil_entities,omitempty"`
	DestEntities      []string `json:"dest_entities,omitempty"`
	OverwriterEnt     []string `json:"overwriter_entities,omitempty"`
	DeleterEnt        []string `json:"deleter_entities,omitempty"`
	ExfilDomains      []string `json:"exfil_domains,omitempty"`
	OverwriterDomains []string `json:"overwriter_domains,omitempty"`
	DeleterDomains    []string `json:"deleter_domains,omitempty"`
}

// PairRows flattens Pairs into rows sorted by (name, owner).
func (r *Results) PairRows() []PairRow {
	rows := make([]PairRow, 0, len(r.Pairs))
	for key, p := range r.Pairs {
		rows = append(rows, PairRow{
			Name: key.Name, Owner: key.Owner, API: p.API,
			ExfilEntities:     sortedKeys(p.ExfilEntities),
			DestEntities:      sortedKeys(p.DestEntities),
			OverwriterEnt:     sortedKeys(p.OverwriterEnt),
			DeleterEnt:        sortedKeys(p.DeleterEnt),
			ExfilDomains:      sortedKeys(p.ExfilDomains),
			OverwriterDomains: sortedKeys(p.OverwriterDomains),
			DeleterDomains:    sortedKeys(p.DeleterDomains),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Name != rows[j].Name {
			return rows[i].Name < rows[j].Name
		}
		return rows[i].Owner < rows[j].Owner
	})
	return rows
}

// SiteAction is one (action, API) the site exhibited.
type SiteAction struct {
	Action ActionKind     `json:"action"`
	API    instrument.API `json:"api"`
}

// SiteRow is one site's cross-domain action record: which (action, API)
// combinations it exhibited and its detected events, in canonical order.
type SiteRow struct {
	Site    string       `json:"site"`
	Actions []SiteAction `json:"actions,omitempty"`
	Events  []Event      `json:"events,omitempty"`
}

// SiteRows flattens SiteActions plus the canonical event sequence into
// per-site rows sorted by site. Finalized Events are grouped by site
// already, so each row's Events slice preserves canonical order.
func (r *Results) SiteRows() []SiteRow {
	bySite := make(map[string]*SiteRow, len(r.SiteActions))
	rowFor := func(site string) *SiteRow {
		row := bySite[site]
		if row == nil {
			row = &SiteRow{Site: site}
			bySite[site] = row
		}
		return row
	}
	for site, acts := range r.SiteActions {
		row := rowFor(site)
		for k := range acts {
			row.Actions = append(row.Actions, SiteAction{Action: k.Kind, API: k.API})
		}
		sort.Slice(row.Actions, func(i, j int) bool {
			if row.Actions[i].Action != row.Actions[j].Action {
				return row.Actions[i].Action < row.Actions[j].Action
			}
			return row.Actions[i].API < row.Actions[j].API
		})
	}
	for _, e := range r.Events {
		row := rowFor(e.Site)
		row.Events = append(row.Events, e)
	}
	rows := make([]SiteRow, 0, len(bySite))
	for _, row := range bySite {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Site < rows[j].Site })
	return rows
}

// RetentionTable is the crawl-retention rollup cookieguard.Server serves
// on /v1/tables/retention: how much of the crawl survived, per vantage.
type RetentionTable struct {
	SitesTotal     int          `json:"sites_total"`
	SitesComplete  int          `json:"sites_complete"`
	VisitsFailed   int          `json:"visits_failed"`
	VisitsDegraded int          `json:"visits_degraded"`
	Vantages       []VantageRow `json:"vantages"`
}

// Retention assembles the retention table.
func (r *Results) Retention() RetentionTable {
	return RetentionTable{
		SitesTotal:     r.Summary.SitesTotal,
		SitesComplete:  r.Summary.SitesComplete,
		VisitsFailed:   r.Failures.VisitsFailed,
		VisitsDegraded: r.Failures.VisitsDegraded,
		Vantages:       r.VantageTable(),
	}
}

// stableResults is the canonical whole-Results encoding.
type stableResults struct {
	Summary    Summary        `json:"summary"`
	Pairs      []PairRow      `json:"pairs"`
	PairsByAPI map[string]int `json:"pairs_by_api"`
	Sites      []SiteRow      `json:"sites"`
	Events     []Event        `json:"events"`
	Failures   FailureStats   `json:"failures"`
	Vantages   []VantageRow   `json:"vantages"`
}

// StableJSON encodes the finalized Results deterministically: equal
// Results (same observed log multiset) produce equal bytes, independent
// of observation order, shard count, or worker count. It is the byte
// representation behind /v1/results and the shard-merge equivalence
// contract.
func (r *Results) StableJSON() ([]byte, error) {
	byAPI := make(map[string]int, len(r.PairsByAPI))
	for api, n := range r.PairsByAPI {
		byAPI[string(api)] = n
	}
	return json.Marshal(stableResults{
		Summary:    r.Summary,
		Pairs:      r.PairRows(),
		PairsByAPI: byAPI, // string-keyed maps marshal with sorted keys
		Sites:      r.SiteRows(),
		Events:     r.Events,
		Failures:   r.Failures,
		Vantages:   r.VantageTable(),
	})
}

// sortedKeys flattens a set to its sorted element list (nil when empty,
// so omitempty drops it).
func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
