package analysis

import (
	"reflect"
	"testing"

	"cookieguard/internal/instrument"
)

func TestExtractIdentifiers(t *testing.T) {
	cases := []struct {
		value string
		want  []string
	}{
		{"GA1.1.444332364.1746838827", []string{"444332364", "1746838827"}},
		{"fb.0.1746746266109.868308499845957651", []string{"1746746266109", "868308499845957651"}},
		{"short.tiny", nil},
		{"", nil},
		{"abcdefgh", []string{"abcdefgh"}},
		{"x=longsegment12|another9", []string{"longsegment12", "another9"}},
		{"---", nil},
	}
	for _, c := range cases {
		got := ExtractIdentifiers(c.value, 8)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ExtractIdentifiers(%q) = %v, want %v", c.value, got, c.want)
		}
	}
}

func TestEncodedForms(t *testing.T) {
	forms := EncodedForms("444332364")
	if forms[0] != "444332364" {
		t.Errorf("raw = %q", forms[0])
	}
	if forms[1] != "NDQ0MzMyMzY0" {
		t.Errorf("b64 = %q", forms[1])
	}
	if len(forms[2]) != 32 || len(forms[3]) != 40 {
		t.Errorf("hash lengths: md5=%d sha1=%d", len(forms[2]), len(forms[3]))
	}
}

// synthetic visit log helpers

func writeEv(api instrument.API, name, value, scriptURL string, maxAge int64) instrument.CookieEvent {
	return instrument.CookieEvent{
		Op: instrument.OpWrite, API: api, Name: name, Value: value,
		MaxAge: maxAge, ScriptURL: scriptURL,
		ScriptDomain: domainOf(scriptURL), MainFrame: true,
	}
}

func deleteEv(api instrument.API, name, scriptURL string) instrument.CookieEvent {
	return instrument.CookieEvent{
		Op: instrument.OpDelete, API: api, Name: name,
		ScriptURL: scriptURL, ScriptDomain: domainOf(scriptURL), MainFrame: true,
	}
}

func domainOf(url string) string {
	switch {
	case url == "":
		return ""
	case len(url) > 8 && url[:8] == "https://":
		host := url[8:]
		for i := 0; i < len(host); i++ {
			if host[i] == '/' {
				host = host[:i]
				break
			}
		}
		// crude eTLD+1 for test URLs like a.b.example
		return host[lastDot2(host):]
	}
	return ""
}

func lastDot2(host string) int {
	dots := 0
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == '.' {
			dots++
			if dots == 2 {
				return i + 1
			}
		}
	}
	return 0
}

const (
	setterJS = "https://cdn.tracker.example/set.js"
	readerJS = "https://cdn.other.example/read.js"
)

func baseLog() instrument.VisitLog {
	return instrument.VisitLog{
		Site: "shop.example", URL: "https://www.shop.example/", OK: true,
		Scripts: []instrument.ScriptRecord{
			{URL: setterJS, Domain: "tracker.example"},
			{URL: readerJS, Domain: "other.example"},
		},
		Requests: []instrument.RequestEvent{
			{URL: "https://www.shop.example/", Kind: "document", MainFrame: true},
		},
	}
}

func TestCrossDomainOverwriteDetected(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
		writeEv(instrument.APIDocument, "_tid", "zzzzzzzz99999999", readerJS, 7200),
	}
	res := New().Run([]instrument.VisitLog{v})
	if len(res.Events) != 1 {
		t.Fatalf("events = %+v", res.Events)
	}
	e := res.Events[0]
	if e.Kind != ActOverwriting || e.Cookie.Owner != "tracker.example" ||
		e.ActorDomain != "other.example" {
		t.Fatalf("event = %+v", e)
	}
	if !e.ChangedValue || !e.ChangedExpires {
		t.Fatalf("attr flags = %+v", e)
	}
}

func TestSameDomainOverwriteIgnored(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
		writeEv(instrument.APIDocument, "_tid", "different1234567", "https://static.tracker.example/other.js", 3600),
	}
	res := New().Run([]instrument.VisitLog{v})
	if len(res.Events) != 0 {
		t.Fatalf("same-domain overwrite flagged: %+v", res.Events)
	}
}

func TestCrossDomainDeleteDetected(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
		deleteEv(instrument.APIDocument, "_tid", readerJS),
	}
	res := New().Run([]instrument.VisitLog{v})
	if len(res.Events) != 1 || res.Events[0].Kind != ActDeleting {
		t.Fatalf("events = %+v", res.Events)
	}
	// deleting a non-existent cookie afterwards is a no-op
	v.Cookies = append(v.Cookies, deleteEv(instrument.APIDocument, "_tid", readerJS))
	res = New().Run([]instrument.VisitLog{v})
	if len(res.Events) != 1 {
		t.Fatalf("double delete counted twice: %+v", res.Events)
	}
}

func TestExfiltrationDetected(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_ga", "GA1.1.444332364.1746838827", setterJS, 3600),
	}
	v.Requests = append(v.Requests, instrument.RequestEvent{
		URL:             "https://px.dest.example/t?ga=NDQ0MzMyMzY0.LjE3NDY4Mzg4Mjc",
		Kind:            "beacon",
		InitiatorScript: readerJS,
		InitiatorDomain: "other.example",
		MainFrame:       true,
	})
	res := New().Run([]instrument.VisitLog{v})
	var exfil *Event
	for i := range res.Events {
		if res.Events[i].Kind == ActExfiltration {
			exfil = &res.Events[i]
		}
	}
	if exfil == nil {
		t.Fatal("b64-encoded exfiltration not detected")
	}
	if exfil.ActorDomain != "other.example" || exfil.Destination != "dest.example" {
		t.Fatalf("event = %+v", exfil)
	}
}

func TestOwnerExfiltrationNotCrossDomain(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
	}
	v.Requests = append(v.Requests, instrument.RequestEvent{
		URL:             "https://collect.elsewhere.example/t?v=abcdefgh12345678",
		Kind:            "beacon",
		InitiatorScript: setterJS, // the owner ships its own cookie
		InitiatorDomain: "tracker.example",
		MainFrame:       true,
	})
	res := New().Run([]instrument.VisitLog{v})
	for _, e := range res.Events {
		if e.Kind == ActExfiltration {
			t.Fatalf("owner's own send flagged as cross-domain: %+v", e)
		}
	}
}

func TestSendBackToOwnerNotExfiltration(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
	}
	v.Requests = append(v.Requests, instrument.RequestEvent{
		URL:             "https://sync.tracker.example/t?v=abcdefgh12345678",
		Kind:            "beacon",
		InitiatorScript: readerJS,
		InitiatorDomain: "other.example",
		MainFrame:       true,
	})
	res := New().Run([]instrument.VisitLog{v})
	for _, e := range res.Events {
		if e.Kind == ActExfiltration {
			t.Fatalf("send back to owner flagged: %+v", e)
		}
	}
}

func TestShortValuesNotExfiltratable(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "pref", "dark", setterJS, 3600),
	}
	v.Requests = append(v.Requests, instrument.RequestEvent{
		URL:             "https://px.dest.example/t?p=dark",
		Kind:            "beacon",
		InitiatorScript: readerJS,
		InitiatorDomain: "other.example",
		MainFrame:       true,
	})
	res := New().Run([]instrument.VisitLog{v})
	for _, e := range res.Events {
		if e.Kind == ActExfiltration {
			t.Fatalf("short value flagged: %+v", e)
		}
	}
}

func TestHTTPSetCookieOwnership(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		{Op: instrument.OpHTTPSet, API: instrument.APIHTTP, Name: "srv_csrf",
			Value: "a1b2c3d4e5f6a7b8", Domain: "shop.example", MainFrame: true},
		writeEv(instrument.APIDocument, "srv_csrf", "overwritten111111", readerJS, 60),
	}
	res := New().Run([]instrument.VisitLog{v})
	if len(res.Events) != 1 || res.Events[0].Kind != ActOverwriting ||
		res.Events[0].Cookie.Owner != "shop.example" {
		t.Fatalf("events = %+v", res.Events)
	}
}

func TestInlineWritesUnattributable(t *testing.T) {
	v := baseLog()
	inline := instrument.CookieEvent{
		Op: instrument.OpWrite, API: instrument.APIDocument,
		Name: "inline_c", Value: "val12345678", Inline: true, MainFrame: true,
	}
	cross := writeEv(instrument.APIDocument, "inline_c", "other9999999", readerJS, 60)
	v.Cookies = []instrument.CookieEvent{inline, cross}
	res := New().Run([]instrument.VisitLog{v})
	// owner is "" (unattributable); cross write counts as overwrite of
	// the unattributed owner
	if len(res.Events) != 1 {
		t.Fatalf("events = %+v", res.Events)
	}
}

func TestTable1Shapes(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
		writeEv(instrument.APIDocument, "_tid", "zzzzzzzz99999999", readerJS, 7200),
		writeEv(instrument.APICookieStore, "keep_alive", "csvalue123456", setterJS, 600),
	}
	res := New().Run([]instrument.VisitLog{v})
	rows := res.Table1()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var owDoc *Table1Row
	for i := range rows {
		if rows[i].API == instrument.APIDocument && rows[i].Action == ActOverwriting {
			owDoc = &rows[i]
		}
		if rows[i].API == instrument.APICookieStore && rows[i].Action != ActExfiltration {
			if rows[i].CookieCount != 0 {
				t.Fatalf("cookieStore manipulation should be zero: %+v", rows[i])
			}
		}
	}
	if owDoc == nil || owDoc.PctOfWebsites != 100 || owDoc.CookieCount != 1 {
		t.Fatalf("doc overwrite row = %+v", owDoc)
	}
}

func TestSummaryCounts(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "_tid", "abcdefgh12345678", setterJS, 3600),
	}
	incomplete := instrument.VisitLog{Site: "dead.example", OK: false}
	res := New().Run([]instrument.VisitLog{v, incomplete})
	if res.Summary.SitesTotal != 2 || res.Summary.SitesComplete != 1 {
		t.Fatalf("summary = %+v", res.Summary)
	}
	if res.Summary.SitesWithThirdParty != 1 {
		t.Fatalf("third-party sites = %d", res.Summary.SitesWithThirdParty)
	}
	if res.Summary.SitesUsingDocCookie != 1 || res.Summary.SitesUsingCookieStore != 0 {
		t.Fatalf("API usage = %+v", res.Summary)
	}
}

func TestMutationAnalysis(t *testing.T) {
	v := baseLog()
	v.Cookies = []instrument.CookieEvent{
		writeEv(instrument.APIDocument, "x", "abcdefgh12345678", setterJS, 10),
	}
	v.Mutations = []instrument.MutationRecord{
		{Kind: "text", TargetID: "banner", OwnerScript: "", ByScript: readerJS},
	}
	res := New().Run([]instrument.VisitLog{v})
	if res.Summary.SitesWithCrossDomainDOM != 1 {
		t.Fatalf("DOM pilot count = %d", res.Summary.SitesWithCrossDomainDOM)
	}
	// Same-domain mutation is not cross-domain.
	v.Mutations = []instrument.MutationRecord{
		{Kind: "text", TargetID: "banner", OwnerScript: "", ByScript: "https://cdn.shop.example/fp.js"},
	}
	res = New().Run([]instrument.VisitLog{v})
	if res.Summary.SitesWithCrossDomainDOM != 0 {
		t.Fatal("same-domain mutation flagged")
	}
}
