package analysis

import (
	"reflect"
	"testing"

	"cookieguard/internal/instrument"
)

// failureLogs is a small fixed mix: one clean visit, one degraded visit
// (failed script with retries), one deadline-degraded visit, and two
// fatal visits (timeout, http).
func failureLogs() []instrument.VisitLog {
	clean := baseLog()
	clean.Cookies = []instrument.CookieEvent{writeEv(instrument.APIDocument, "a", "1", setterJS, 60)}

	degraded := baseLog()
	degraded.Cookies = clean.Cookies
	degraded.Requests = append(degraded.Requests, instrument.RequestEvent{
		URL: "https://cdn.other.example/read.js", Kind: "script",
		Failed: true, Failure: "conn-reset", Retries: 2, MainFrame: true,
	})

	deadline := baseLog()
	deadline.Cookies = clean.Cookies
	deadline.Failure = "deadline"

	timedOut := instrument.VisitLog{Site: "down.example", OK: false, Failure: "timeout",
		Error: "netsim: injected timeout: www.down.example"}
	serverErr := instrument.VisitLog{Site: "broken.example", OK: false, Failure: "http",
		Error: "browser: visit https://www.broken.example/: document status 503"}

	return []instrument.VisitLog{clean, degraded, deadline, timedOut, serverErr}
}

func TestFailureRollup(t *testing.T) {
	res := New().Run(failureLogs())
	f := res.Failures
	if f.VisitsFailed != 2 {
		t.Errorf("VisitsFailed = %d, want 2", f.VisitsFailed)
	}
	if f.VisitsDegraded != 2 {
		t.Errorf("VisitsDegraded = %d, want 2 (failed-script + deadline visits)", f.VisitsDegraded)
	}
	if f.RequestsFailed != 1 || f.Retries != 2 {
		t.Errorf("RequestsFailed=%d Retries=%d, want 1 and 2", f.RequestsFailed, f.Retries)
	}
	wantVisit := map[string]int{"timeout": 1, "http": 1, "deadline": 1}
	if !reflect.DeepEqual(f.VisitFailures, wantVisit) {
		t.Errorf("VisitFailures = %v, want %v", f.VisitFailures, wantVisit)
	}
	wantReq := map[string]int{"conn-reset": 1}
	if !reflect.DeepEqual(f.RequestFailures, wantReq) {
		t.Errorf("RequestFailures = %v, want %v", f.RequestFailures, wantReq)
	}

	rows := res.FailureTable()
	want := []FailureRow{
		{Scope: "visit", Class: "deadline", Count: 1},
		{Scope: "visit", Class: "http", Count: 1},
		{Scope: "visit", Class: "timeout", Count: 1},
		{Scope: "request", Class: "conn-reset", Count: 1},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("FailureTable = %v, want %v", rows, want)
	}

	// Fatal visits are excluded from the measurement, not from the
	// rollup: they count toward SitesTotal but not SitesComplete.
	if res.Summary.SitesTotal != 5 || res.Summary.SitesComplete != 3 {
		t.Errorf("SitesTotal=%d SitesComplete=%d, want 5 and 3",
			res.Summary.SitesTotal, res.Summary.SitesComplete)
	}
}

// TestFailureRollupStreamingMatchesBatch: the rollup is identical on the
// incremental path, like every other aggregate.
func TestFailureRollupStreamingMatchesBatch(t *testing.T) {
	batch := New().Run(failureLogs())
	an := New()
	for _, v := range failureLogs() {
		an.Observe(v)
	}
	streamed := an.Finalize()
	if !reflect.DeepEqual(batch.Failures, streamed.Failures) {
		t.Errorf("streamed rollup %+v != batch %+v", streamed.Failures, batch.Failures)
	}
}

// TestFailureRollupZeroOnCleanLogs: a fault-free log set leaves every
// counter at zero and the table empty.
func TestFailureRollupZeroOnCleanLogs(t *testing.T) {
	clean := baseLog()
	clean.Cookies = []instrument.CookieEvent{writeEv(instrument.APIDocument, "a", "1", setterJS, 60)}
	res := New().Run([]instrument.VisitLog{clean, clean})
	f := res.Failures
	if f.VisitsFailed != 0 || f.VisitsDegraded != 0 || f.RequestsFailed != 0 || f.Retries != 0 {
		t.Errorf("clean logs produced failure counts: %+v", f)
	}
	if rows := res.FailureTable(); len(rows) != 0 {
		t.Errorf("clean logs produced failure rows: %v", rows)
	}
}
