package analysis

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cookieguard/internal/instrument"
)

// shardFixture builds n complete visits with unique sites (the pipeline
// visits each (site, vantage) once per crawl) cycling through the
// behaviours the analyzer detects — overwrite, delete, exfiltration,
// HTTP-set clobber — plus periodic incomplete visits and a second
// vantage, so every merge path (events, pairs, site actions, failures,
// vantage rollups) is exercised.
func shardFixture(n int) []instrument.VisitLog {
	logs := make([]instrument.VisitLog, 0, n)
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("site%03d.example", i)
		if i%7 == 6 {
			logs = append(logs, instrument.VisitLog{Site: site, OK: false})
			continue
		}
		v := baseLog()
		v.Site = site
		v.URL = "https://www." + site + "/"
		if i%3 == 1 {
			v.Vantage = "eu"
		}
		v.Timing.LoadEvent = float64(40 + i%17*13)
		switch i % 4 {
		case 0: // cross-domain overwrite
			v.Cookies = []instrument.CookieEvent{
				writeEv(instrument.APIDocument, "_ga", "GA1.1.444332364.1746838827", setterJS, 3600),
				writeEv(instrument.APIDocument, "_ga", "GA1.1.999999999.1746838827", readerJS, 7200),
			}
		case 1: // exfiltration via beacon
			v.Cookies = []instrument.CookieEvent{
				writeEv(instrument.APIDocument, "_uid", "uidval4433236411", setterJS, 3600),
			}
			v.Requests = append(v.Requests, instrument.RequestEvent{
				URL:             "https://px.dest.example/t?u=dWlkdmFsNDQzMzIzNjQxMQ",
				Kind:            "beacon",
				InitiatorScript: readerJS,
				InitiatorDomain: "other.example",
				MainFrame:       true,
			})
		case 2: // cross-domain delete + CookieStore write
			v.Cookies = []instrument.CookieEvent{
				writeEv(instrument.APIDocument, "_sid", "sidvalue12345678", setterJS, 600),
				deleteEv(instrument.APIDocument, "_sid", readerJS),
				writeEv(instrument.APICookieStore, "cs_id", "csvalue1234567", setterJS, 600),
			}
		case 3: // HTTP-set cookie clobbered by script
			v.Cookies = []instrument.CookieEvent{
				{Op: instrument.OpHTTPSet, API: instrument.APIHTTP, Name: "srv",
					Value: "serverval12345678", Domain: site, MainFrame: true},
				writeEv(instrument.APIDocument, "srv", "clobbered12345678", readerJS, 60),
			}
		}
		logs = append(logs, v)
	}
	return logs
}

func stableBytes(t *testing.T, r *Results) []byte {
	t.Helper()
	b, err := r.StableJSON()
	if err != nil {
		t.Fatalf("StableJSON: %v", err)
	}
	return b
}

// TestMergeMatchesSingle is the shard-merge equivalence contract: for
// N ∈ {1, 2, 8} shards, distributing the logs across shards (round-robin
// and random assignment, in shuffled feed orders) and merging must
// produce Results byte-identical to the single analyzer over the same
// logs.
func TestMergeMatchesSingle(t *testing.T) {
	logs := shardFixture(60)
	want := stableBytes(t, New().Run(logs))

	for _, n := range []int{1, 2, 8} {
		for trial := 0; trial < 3; trial++ {
			rng := rand.New(rand.NewSource(int64(n*100 + trial)))
			order := rng.Perm(len(logs))
			shards := make([]*Analyzer, n)
			for i := range shards {
				shards[i] = New()
			}
			for k, idx := range order {
				var si int
				if trial%2 == 0 {
					si = k % n // round-robin
				} else {
					si = rng.Intn(n) // uneven random assignment
				}
				shards[si].Observe(logs[idx])
			}
			got := stableBytes(t, Merge(shards...))
			if string(got) != string(want) {
				t.Fatalf("n=%d trial=%d: merged Results diverge from single analyzer\nwant: %s\ngot:  %s", n, trial, want, got)
			}
		}
	}
}

// TestShardedConcurrentObserve feeds a Sharded analyzer from concurrent
// workers (more workers than shards, so shard locks are exercised) with
// mid-run Snapshots racing the writers, and requires the final Finalize
// to match the single analyzer byte for byte. Run with -race this also
// proves Observe/Snapshot don't share unsynchronized state.
func TestShardedConcurrentObserve(t *testing.T) {
	logs := shardFixture(80)
	want := stableBytes(t, New().Run(logs))

	for _, n := range []int{1, 2, 8} {
		sh := NewSharded(n, nil)
		var wg sync.WaitGroup
		workers := 2 * n
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(logs); i += workers {
					sh.Observe(w, logs[i])
				}
			}(w)
		}
		// Snapshot concurrently with the writers: results must be valid
		// (finalizable) even if partial.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				snap := sh.Snapshot()
				if _, err := snap.StableJSON(); err != nil {
					t.Errorf("mid-run snapshot not encodable: %v", err)
				}
			}
		}()
		wg.Wait()
		got := stableBytes(t, sh.Finalize())
		if string(got) != string(want) {
			t.Fatalf("n=%d: concurrent sharded Finalize diverges from single analyzer", n)
		}
	}
}

// TestSnapshotNonDestructive: a Snapshot must not consume shard state —
// observation continues and the final Finalize still covers every log.
func TestSnapshotNonDestructive(t *testing.T) {
	logs := shardFixture(20)
	want := stableBytes(t, New().Run(logs))

	sh := NewSharded(4, nil)
	for i, v := range logs {
		sh.Observe(i, v)
		if i == len(logs)/2 {
			mid := sh.Snapshot()
			if mid.Summary.SitesTotal == 0 {
				t.Fatal("mid-run snapshot saw no sites")
			}
		}
	}
	if got := stableBytes(t, sh.Finalize()); string(got) != string(want) {
		t.Fatal("Finalize after mid-run Snapshot diverges from single analyzer")
	}
}

// TestMergeEmptyShards: merging nil and never-observed shards yields the
// same empty Results a fresh analyzer finalizes to.
func TestMergeEmptyShards(t *testing.T) {
	want := stableBytes(t, New().Finalize())
	got := stableBytes(t, Merge(nil, New(), nil))
	if string(got) != string(want) {
		t.Fatalf("empty merge diverges: want %s got %s", want, got)
	}
}

// TestSnapshotMatchesFinalize: a quiescent Snapshot equals Finalize.
func TestSnapshotMatchesFinalize(t *testing.T) {
	logs := shardFixture(15)
	sh := NewSharded(3, nil)
	for i, v := range logs {
		sh.Observe(i, v)
	}
	snap := stableBytes(t, sh.Snapshot())
	fin := stableBytes(t, sh.Finalize())
	if string(snap) != string(fin) {
		t.Fatal("quiescent Snapshot diverges from Finalize")
	}
}

// TestVantageInterleavingOrderIndependent models the two crawl modes
// feeding analysis: sequential multi-vantage crawls observe records as
// consecutive per-vantage blocks, the unified parallel scheduler
// interleaves vantages in completion order. The canonical finalize must
// make both feeds — single analyzer or sharded — byte-identical.
func TestVantageInterleavingOrderIndependent(t *testing.T) {
	base := shardFixture(40)
	var blocked []instrument.VisitLog
	for _, vant := range []string{"eu-west", "us-east"} {
		for _, v := range base {
			v.Vantage = vant
			// Regions observe different tails; perturb so rollups differ.
			if vant == "us-east" {
				v.Timing.LoadEvent *= 0.7
			}
			blocked = append(blocked, v)
		}
	}
	// Interleave the two vantage blocks pairwise (worst-case mixing).
	half := len(blocked) / 2
	interleaved := make([]instrument.VisitLog, 0, len(blocked))
	for i := 0; i < half; i++ {
		interleaved = append(interleaved, blocked[i], blocked[half+i])
	}
	want := stableBytes(t, New().Run(blocked))
	if got := stableBytes(t, New().Run(interleaved)); string(got) != string(want) {
		t.Fatal("interleaved vantage feed diverges from blocked feed (single analyzer)")
	}
	sh := NewSharded(4, nil)
	for i, v := range interleaved {
		sh.Observe(i%4, v)
	}
	if got := stableBytes(t, sh.Finalize()); string(got) != string(want) {
		t.Fatal("interleaved vantage feed diverges from blocked feed (sharded)")
	}
}
