package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestNewStartsAtEpoch(t *testing.T) {
	c := New()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	got := c.Advance(1500 * time.Millisecond)
	want := Epoch.Add(1500 * time.Millisecond)
	if !got.Equal(want) {
		t.Fatalf("Advance = %v, want %v", got, want)
	}
	if !c.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", c.Now(), want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	c := New()
	c.Advance(-time.Hour)
	if !c.Now().Equal(Epoch) {
		t.Fatalf("negative Advance moved clock to %v", c.Now())
	}
}

func TestAdvanceMillis(t *testing.T) {
	c := New()
	c.AdvanceMillis(250.5)
	want := Epoch.Add(250500 * time.Microsecond)
	if !c.Now().Equal(want) {
		t.Fatalf("AdvanceMillis = %v, want %v", c.Now(), want)
	}
}

func TestSince(t *testing.T) {
	c := New()
	start := c.Now()
	c.Advance(3 * time.Second)
	if got := c.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestUnixMillis(t *testing.T) {
	c := NewAt(time.UnixMilli(1_746_838_827_000).UTC())
	if got := c.UnixMillis(); got != 1_746_838_827_000 {
		t.Fatalf("UnixMillis = %d", got)
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(5000 * time.Millisecond)
	if !c.Now().Equal(want) {
		t.Fatalf("concurrent Advance = %v, want %v", c.Now(), want)
	}
}
