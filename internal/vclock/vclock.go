// Package vclock provides a virtual clock that drives the entire
// simulation. All page-load timing, cookie expiry, and crawler pacing in
// this repository is expressed against a Clock rather than the wall clock,
// which makes every experiment deterministic and allows the performance
// model (internal/perf) to measure simulated milliseconds exactly.
package vclock

import (
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual time source. The zero value is
// not usable; construct one with New.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the default simulation start time: a fixed instant so that
// generated cookie timestamps and expiries are reproducible.
var Epoch = time.Date(2025, time.March, 1, 0, 0, 0, 0, time.UTC)

// New returns a Clock starting at Epoch.
func New() *Clock { return NewAt(Epoch) }

// NewAt returns a Clock starting at the given instant.
func NewAt(t time.Time) *Clock { return &Clock{now: t} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: virtual time never moves backwards.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceMillis moves the clock forward by ms milliseconds.
func (c *Clock) AdvanceMillis(ms float64) time.Time {
	return c.Advance(time.Duration(ms * float64(time.Millisecond)))
}

// Since reports the virtual duration elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// UnixMillis returns the current virtual time as Unix milliseconds, the
// representation scripts use for timestamps (mirroring Date.now()).
func (c *Clock) UnixMillis() int64 {
	return c.Now().UnixMilli()
}
