package publicsuffix

import (
	"net"
	"testing"
)

// TestIsIPLiteralMatchesNetParseIP pins the allocation-free IP check to
// net.ParseIP's verdict for every input shape the host paths can see.
func TestIsIPLiteralMatchesNetParseIP(t *testing.T) {
	cases := []string{
		"1.2.3.4", "0.0.0.0", "255.255.255.255", "256.1.1.1", "1.2.3.4.5",
		"1.2.3", "01.2.3.4", "1.02.3.4", "1.2.3.04", "1.2.3.", ".1.2.3.4",
		"1..2.3", "", "a.b.c.d", "site00042.com", "www.example.co.uk",
		"123.example.com", "1234.1.1.1", "12.34.56.78", "0.1.2.3",
		"::1", "2001:db8::1", "fe80::", "not:an:ip", "1.2.3.4:443",
		"10.0.0.1", "192.168.1.1", "999.999.999.999", "metrics.site00001.com",
	}
	for _, c := range cases {
		want := net.ParseIP(c) != nil
		if got := isIPLiteral(c); got != want {
			t.Errorf("isIPLiteral(%q) = %v, net.ParseIP says %v", c, got, want)
		}
	}
}

// TestCachedResultsStable checks that repeated (cached) lookups agree with
// each other and that IP/suffix/empty hosts keep their error contract.
func TestCachedResultsStable(t *testing.T) {
	hosts := []string{
		"www.site00042.com", "site00042.com", "a.b.co.uk", "co.uk", "com",
		"1.2.3.4", "localhost", "metrics.site00007.de",
	}
	for _, h := range hosts {
		s1, l1 := PublicSuffix(h)
		d1, e1 := ETLDPlusOne(h)
		for i := 0; i < 3; i++ {
			s2, l2 := PublicSuffix(h)
			d2, e2 := ETLDPlusOne(h)
			if s1 != s2 || l1 != l2 || d1 != d2 || e1 != e2 {
				t.Fatalf("unstable results for %q", h)
			}
		}
	}
	if _, err := ETLDPlusOne("1.2.3.4"); err != ErrIPAddress {
		t.Errorf("IP literal: got %v, want ErrIPAddress", err)
	}
	if _, err := ETLDPlusOne(""); err != ErrEmptyHost {
		t.Errorf("empty host: got %v, want ErrEmptyHost", err)
	}
	if _, err := ETLDPlusOne("co.uk"); err != ErrIsSuffix {
		t.Errorf("bare suffix: got %v, want ErrIsSuffix", err)
	}
	if d := RegistrableDomain("www.site00042.com"); d != "site00042.com" {
		t.Errorf("RegistrableDomain = %q", d)
	}
}
