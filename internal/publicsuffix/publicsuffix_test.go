package publicsuffix

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	cases := []struct {
		host   string
		suffix string
		listed bool
	}{
		{"example.com", "com", true},
		{"www.example.com", "com", true},
		{"example.co.uk", "co.uk", true},
		{"a.b.example.co.uk", "co.uk", true},
		{"example.github.io", "github.io", true},
		{"foo.blogspot.com", "blogspot.com", true},
		{"example.unknowntld", "unknowntld", false}, // implicit * rule
		{"sub.example.unknowntld", "unknowntld", false},
		{"foo.bar.ck", "bar.ck", true}, // wildcard *.ck
		{"www.ck", "ck", true},         // exception !www.ck
		{"city.kawasaki.jp", "kawasaki.jp", true},
		{"other.kawasaki.jp", "other.kawasaki.jp", true}, // *.kawasaki.jp
		{"COM", "com", true},                             // case folding
		{"example.com.", "com", true},                    // trailing dot
	}
	for _, c := range cases {
		got, listed := PublicSuffix(c.host)
		if got != c.suffix || listed != c.listed {
			t.Errorf("PublicSuffix(%q) = (%q,%v), want (%q,%v)",
				c.host, got, listed, c.suffix, c.listed)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	cases := []struct {
		host string
		want string
	}{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"example.co.uk", "example.co.uk"},
		{"shop.example.co.uk", "example.co.uk"},
		{"user.github.io", "user.github.io"},
		{"deep.user.github.io", "user.github.io"},
		{"store.myshopify.com", "store.myshopify.com"},
		{"googletagmanager.com", "googletagmanager.com"},
		{"px.ads.linkedin.com", "linkedin.com"},
		{"cdn.shopifycloud.com", "shopifycloud.com"},
		{"WWW.EXAMPLE.COM", "example.com"},
		{"something.unknowntld", "something.unknowntld"},
		{"www.ck", "www.ck"}, // exception rule: www.ck is registrable
		{"sub.www.ck", "www.ck"},
		{"city.kawasaki.jp", "city.kawasaki.jp"},
	}
	for _, c := range cases {
		got, err := ETLDPlusOne(c.host)
		if err != nil {
			t.Errorf("ETLDPlusOne(%q) error: %v", c.host, err)
			continue
		}
		if got != c.want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestETLDPlusOneErrors(t *testing.T) {
	cases := []struct {
		host string
		err  error
	}{
		{"", ErrEmptyHost},
		{"   ", ErrEmptyHost},
		{"192.168.1.1", ErrIPAddress},
		{"::1", ErrIPAddress},
		{"com", ErrIsSuffix},
		{"co.uk", ErrIsSuffix},
		{"github.io", ErrIsSuffix},
	}
	for _, c := range cases {
		_, err := ETLDPlusOne(c.host)
		if err != c.err {
			t.Errorf("ETLDPlusOne(%q) err = %v, want %v", c.host, err, c.err)
		}
	}
}

func TestRegistrableDomainForgiving(t *testing.T) {
	cases := []struct{ host, want string }{
		{"www.example.com", "example.com"},
		{"192.168.1.1", "192.168.1.1"},
		{"com", "com"},
		{"localhost", "localhost"},
		{"", ""},
	}
	for _, c := range cases {
		if got := RegistrableDomain(c.host); got != c.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestSameSite(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"www.example.com", "api.example.com", true},
		{"example.com", "example.com", true},
		{"example.com", "example.org", false},
		{"a.example.co.uk", "b.example.co.uk", true},
		{"example.co.uk", "other.co.uk", false},
		{"user1.github.io", "user2.github.io", false}, // private registry isolates users
		{"facebook.com", "fbcdn.net", false},          // the paper's Messenger case
		{"", "", false},
	}
	for _, c := range cases {
		if got := SameSite(c.a, c.b); got != c.want {
			t.Errorf("SameSite(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: eTLD+1 is idempotent — the registrable domain of a registrable
// domain is itself.
func TestRegistrableDomainIdempotent(t *testing.T) {
	hosts := []string{
		"www.example.com", "a.b.c.example.co.uk", "x.user.github.io",
		"px.ads.linkedin.com", "deep.sub.something.unknowntld",
	}
	for _, h := range hosts {
		d1 := RegistrableDomain(h)
		d2 := RegistrableDomain(d1)
		if d1 != d2 {
			t.Errorf("not idempotent: %q -> %q -> %q", h, d1, d2)
		}
	}
}

// Property (quick): for any synthetic host made of clean labels, the
// registrable domain is a suffix of the host and contains the public suffix.
func TestRegistrableDomainSuffixProperty(t *testing.T) {
	labels := []string{"a", "bb", "ccc", "www", "cdn", "shop", "example",
		"tracker", "analytics"}
	tlds := []string{"com", "org", "co.uk", "io", "net", "unknowntld"}
	f := func(i1, i2, i3, it uint8, depth uint8) bool {
		host := tlds[int(it)%len(tlds)]
		parts := []string{labels[int(i1)%len(labels)],
			labels[int(i2)%len(labels)], labels[int(i3)%len(labels)]}
		for d := 0; d < int(depth%3)+1; d++ {
			host = parts[d] + "." + host
		}
		rd := RegistrableDomain(host)
		if rd == "" {
			return false
		}
		if host != rd && !strings.HasSuffix(host, "."+rd) {
			return false
		}
		suffix, _ := PublicSuffix(host)
		return rd == suffix || strings.HasSuffix(rd, "."+suffix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkETLDPlusOne(b *testing.B) {
	hosts := []string{
		"www.example.com", "a.b.example.co.uk", "px.ads.linkedin.com",
		"user.github.io", "cdn.shopifycloud.com",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = ETLDPlusOne(hosts[i%len(hosts)])
	}
}
