// Package publicsuffix determines the public suffix (eTLD) and the
// registrable domain (eTLD+1) of a host name.
//
// CookieGuard's whole isolation model is keyed on eTLD+1: a "cross-domain"
// interaction is one between scripts whose registrable domains differ even
// though they execute in the same main-frame origin (paper §2.1). This
// package implements the standard public-suffix algorithm (normal, wildcard
// "*.", and exception "!" rules) over an embedded snapshot of the list that
// covers every suffix used by the synthetic web plus the common real-world
// multi-label suffixes, so behaviour matches what a browser would compute.
//
// Hosts are expected in lower-case ASCII form; IDNA/punycode conversion is
// out of scope for the simulation and documented as such in DESIGN.md.
package publicsuffix

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// rule is one parsed public-suffix rule.
type rule struct {
	labels    []string // reversed: com, co.uk -> ["uk","co"]
	wildcard  bool     // *.ck
	exception bool     // !www.ck
}

var (
	// ErrEmptyHost is returned for an empty host string.
	ErrEmptyHost = errors.New("publicsuffix: empty host")
	// ErrIPAddress is returned when the host is an IP literal, which has
	// no registrable domain.
	ErrIPAddress = errors.New("publicsuffix: host is an IP address")
	// ErrIsSuffix is returned when the host itself is a public suffix, so
	// no eTLD+1 exists (e.g. "com" or "co.uk").
	ErrIsSuffix = errors.New("publicsuffix: host is a public suffix")
)

var rules = buildRules()

func buildRules() map[string][]rule {
	m := make(map[string][]rule, len(listData))
	for _, line := range listData {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		r := rule{}
		if strings.HasPrefix(line, "!") {
			r.exception = true
			line = line[1:]
		}
		if strings.HasPrefix(line, "*.") {
			r.wildcard = true
			line = line[2:]
		}
		labels := strings.Split(line, ".")
		// store reversed for suffix matching
		rev := make([]string, len(labels))
		for i, l := range labels {
			rev[len(labels)-1-i] = l
		}
		r.labels = rev
		tld := rev[0]
		m[tld] = append(m[tld], r)
	}
	return m
}

// normalize lower-cases and strips a trailing dot.
func normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	host = strings.TrimSuffix(host, ".")
	return host
}

// isIPLiteral reports whether host is an IP address literal, matching
// net.ParseIP(host) != nil without its per-call error allocations. Hosts
// containing a colon (IPv6 literals — never valid hostnames) fall back to
// net.ParseIP; everything else is checked as dotted-decimal IPv4.
func isIPLiteral(host string) bool {
	if strings.IndexByte(host, ':') >= 0 {
		return net.ParseIP(host) != nil
	}
	fields := 0
	i := 0
	for {
		// One decimal field: 1–3 digits, value ≤ 255, no leading zero
		// (net.ParseIP rejects leading zeros, e.g. "01.2.3.4").
		start := i
		v := 0
		for i < len(host) && host[i] >= '0' && host[i] <= '9' {
			v = v*10 + int(host[i]-'0')
			if v > 255 {
				return false
			}
			i++
		}
		n := i - start
		if n == 0 || n > 3 || (n > 1 && host[start] == '0') {
			return false
		}
		fields++
		if i == len(host) {
			return fields == 4
		}
		if host[i] != '.' || fields == 4 {
			return false
		}
		i++
	}
}

// psEntry is a memoized per-host computation: the public suffix, whether a
// list rule matched, and the derived registrable domain (or its error).
// Entries are immutable once stored.
type psEntry struct {
	suffix string
	listed bool
	domain string
	err    error
}

// hostCache memoizes per-host suffix/domain computations. The measurement
// pipeline asks for the same bounded universe of hosts millions of times
// per crawl, and the answers are pure functions of the embedded list, so a
// process-wide cache is sound. Size is bounded to keep a pathological
// input space from growing it without limit; past the cap, lookups compute
// without storing.
var (
	hostCache     sync.Map // string -> *psEntry
	hostCacheSize atomic.Int64
)

const hostCacheMax = 1 << 17

func lookupHost(host string) *psEntry {
	if e, ok := hostCache.Load(host); ok {
		return e.(*psEntry)
	}
	e := &psEntry{}
	if isIPLiteral(host) {
		e.suffix = host
		e.err = ErrIPAddress
	} else {
		e.suffix, e.listed = computePublicSuffix(host)
		e.domain, e.err = computeETLDPlusOne(host, e.suffix)
	}
	if hostCacheSize.Load() < hostCacheMax {
		if _, loaded := hostCache.LoadOrStore(host, e); !loaded {
			hostCacheSize.Add(1)
		}
	}
	return e
}

// PublicSuffix returns the public suffix of host and whether any rule from
// the embedded list matched (false means the implicit "*" fallback of the
// PSL algorithm was used, i.e. the last label alone is the suffix).
func PublicSuffix(host string) (suffix string, listed bool) {
	host = normalize(host)
	if host == "" {
		return host, false
	}
	e := lookupHost(host)
	return e.suffix, e.listed
}

// computePublicSuffix is the uncached suffix computation; host is already
// normalized, non-empty, and not an IP literal.
func computePublicSuffix(host string) (suffix string, listed bool) {
	labels := strings.Split(host, ".")
	n := len(labels)
	rev := make([]string, n)
	for i, l := range labels {
		rev[n-1-i] = l
	}

	// Find the longest matching rule; exceptions beat everything.
	var best *rule
	bestLen := 0
	for i := range rules[rev[0]] {
		r := &rules[rev[0]][i]
		if !matches(r, rev) {
			continue
		}
		effLen := len(r.labels)
		if r.wildcard {
			effLen++
		}
		if r.exception {
			// Exception rule: suffix is the rule minus its first
			// (leftmost) label.
			best = r
			bestLen = len(r.labels) - 1
			goto done
		}
		if best == nil || effLen > bestLen || (effLen == bestLen && !r.wildcard && best.wildcard) {
			best = r
			bestLen = effLen
		}
	}
done:
	if best == nil {
		// Implicit "*" rule: the TLD alone.
		return labels[n-1], false
	}
	if bestLen > n {
		bestLen = n
	}
	return strings.Join(labels[n-bestLen:], "."), true
}

func matches(r *rule, rev []string) bool {
	need := len(r.labels)
	if r.wildcard {
		// wildcard consumes one extra host label to the left
		if len(rev) < need+1 && !r.exception {
			// A wildcard rule also matches a host equal to its
			// literal part (e.g. host "ck" matches "*.ck" base).
			if len(rev) < need {
				return false
			}
		}
	}
	if len(rev) < need {
		return false
	}
	for i := 0; i < need; i++ {
		if rev[i] != r.labels[i] {
			return false
		}
	}
	return true
}

// ETLDPlusOne returns the registrable domain of host: the public suffix
// plus one more label. It errors for empty hosts, IP addresses, and hosts
// that are themselves public suffixes.
func ETLDPlusOne(host string) (string, error) {
	host = normalize(host)
	if host == "" {
		return "", ErrEmptyHost
	}
	e := lookupHost(host)
	return e.domain, e.err
}

// computeETLDPlusOne derives the registrable domain from an already
// computed suffix; host is normalized, non-empty, and not an IP literal.
func computeETLDPlusOne(host, suffix string) (string, error) {
	if host == suffix {
		return "", ErrIsSuffix
	}
	// one more label than the suffix
	rest := strings.TrimSuffix(host, "."+suffix)
	if rest == host {
		return "", ErrIsSuffix
	}
	i := strings.LastIndexByte(rest, '.')
	return rest[i+1:] + "." + suffix, nil
}

// RegistrableDomain is like ETLDPlusOne but returns the host unchanged when
// no registrable domain can be derived (IPs, bare suffixes, localhost).
// This is the forgiving form used throughout measurement code, where an
// unattributable host should group under itself rather than be dropped.
func RegistrableDomain(host string) string {
	d, err := ETLDPlusOne(host)
	if err != nil {
		return normalize(host)
	}
	return d
}

// SameSite reports whether two hosts share a registrable domain
// ("same-site" in web-platform terminology).
func SameSite(a, b string) bool {
	da := RegistrableDomain(a)
	db := RegistrableDomain(b)
	return da != "" && da == db
}
