// Quickstart: build a three-site synthetic web, visit a page with and
// without CookieGuard, and print what each third-party script could see.
package main

import (
	"context"
	"fmt"
	"log"

	"cookieguard"
	"cookieguard/internal/analysis"
)

func main() {
	// A tiny study: 3 sites, deterministic.
	study := cookieguard.NewStudy(cookieguard.StudyConfig{Sites: 3, Interact: true})

	fmt.Println("== sites ==")
	for _, e := range study.SiteList() {
		fmt.Printf("  #%d %s\n", e.Rank, e.Domain)
	}

	// Crawl without the guard: the measurement baseline.
	logs, err := study.Crawl(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	res := study.Analyze(logs)
	fmt.Printf("\n== baseline crawl ==\n")
	fmt.Printf("complete sites: %d\n", res.Summary.SitesComplete)
	fmt.Printf("unique cookie pairs: %d\n", res.Summary.UniquePairsDocument)
	fmt.Printf("sites with cross-domain exfiltration: %.0f%%\n",
		res.SitePct(analysis.ActExfiltration))

	// The same crawl under CookieGuard.
	pol := cookieguard.DefaultGuardPolicy()
	guarded := cookieguard.NewStudy(cookieguard.StudyConfig{Sites: 3, Interact: true, GuardPolicy: &pol})
	glogs, err := guarded.Crawl(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	gres := guarded.Analyze(glogs)
	fmt.Printf("\n== with CookieGuard ==\n")
	fmt.Printf("sites with cross-domain exfiltration: %.0f%%\n",
		gres.SitePct(analysis.ActExfiltration))
	fmt.Println("\nCookieGuard isolates each script to the cookies its own domain created.")
}
