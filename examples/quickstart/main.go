// Quickstart: build a tiny synthetic web and run the streaming pipeline
// twice — once plain, once under CookieGuard — with the composable
// cookieguard.New(...) API. Crawl and analysis run in a single pass:
// each visit log is folded into the analyzer the moment its visit
// finishes, so memory stays O(workers) no matter how many sites.
package main

import (
	"context"
	"fmt"
	"log"

	"cookieguard"
	"cookieguard/internal/analysis"
)

func main() {
	// A tiny pipeline: 3 sites, deterministic, with user interaction.
	p := cookieguard.New(
		cookieguard.WithSites(3),
		cookieguard.WithInteract(true),
	)

	fmt.Println("== sites ==")
	for _, e := range p.SiteList() {
		fmt.Printf("  #%d %s\n", e.Rank, e.Domain)
	}

	// Crawl + analyze in one streaming pass: the measurement baseline.
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== baseline crawl ==\n")
	fmt.Printf("complete sites: %d\n", res.Summary.SitesComplete)
	fmt.Printf("unique cookie pairs: %d\n", res.Summary.UniquePairsDocument)
	fmt.Printf("sites with cross-domain exfiltration: %.0f%%\n",
		res.SitePct(analysis.ActExfiltration))

	// The same pipeline under CookieGuard: one more option.
	guarded := cookieguard.New(
		cookieguard.WithSites(3),
		cookieguard.WithInteract(true),
		cookieguard.WithGuard(cookieguard.DefaultGuardPolicy()),
	)
	gres, err := guarded.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== with CookieGuard ==\n")
	fmt.Printf("sites with cross-domain exfiltration: %.0f%%\n",
		gres.SitePct(analysis.ActExfiltration))
	fmt.Println("\nCookieGuard isolates each script to the cookies its own domain created.")

	// Need the raw logs too? Consume the stream directly — logs arrive
	// as visits finish, bounded by the worker count.
	logs, errs := p.Stream(context.Background())
	fmt.Printf("\n== streamed visit logs ==\n")
	for v := range logs {
		fmt.Printf("  %-16s cookies=%-3d requests=%d\n", v.Site, len(v.Cookies), len(v.Requests))
	}
	if err := <-errs; err != nil {
		log.Fatal(err)
	}
}
