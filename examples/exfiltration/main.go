// Exfiltration reproduces the paper's two §5.4 case studies on a crafted
// page and runs the identifier-detection pipeline over the observed
// traffic:
//
//  1. the LinkedIn insight tag parsing googletagmanager's _ga cookie and
//     shipping Base64-encoded segments to px.ads.linkedin.com;
//  2. the Osano consent script syncing facebook.net's _fbp identifier to
//     Criteo (sslwidget.criteo.com).
package main

import (
	"fmt"
	"log"
	"net/http"

	"cookieguard/internal/analysis"
	"cookieguard/internal/browser"
	"cookieguard/internal/instrument"
	"cookieguard/internal/netsim"
)

func main() {
	in := netsim.New()

	in.RegisterFunc("www.optimonk-like.example", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<html><head>
<script src="https://www.googletagmanager.com/gtm.js"></script>
<script src="https://connect.facebook.net/en_US/fbevents.js"></script>
<script src="https://snap.licdn.com/li.lms-analytics/insight.min.js"></script>
<script src="https://cmp.osano.com/osano.js"></script>
</head><body><div id="main"></div></body></html>`)
	})
	serve := func(host, path, body string) {
		in.RegisterFunc(host, func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == path {
				fmt.Fprint(w, body)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		})
	}
	serve("www.googletagmanager.com", "/gtm.js",
		`set_cookie("_ga", "GA1.1.444332364." + str(now_ms()), {"max_age": 63072000});`)
	serve("connect.facebook.net", "/en_US/fbevents.js",
		`set_cookie("_fbp", "fb.0." + str(now_ms()) + "." + rand_id(18), {"max_age": 7776000});`)
	// Case study 1: targeted parsing + Base64 encoding of _ga segments.
	serve("snap.licdn.com", "/li.lms-analytics/insight.min.js", `
let g = get_cookie("_ga");
if (g != null) {
  let parts = split(g, ".");
  let cid = parts[2];
  let ts = parts[3];
  send("https://px.ads.linkedin.com/attribution_trigger", {
    "pid": "621340",
    "url": page_url(),
    "_ga": b64(cid) + "." + b64(ts)
  });
}`)
	// Case study 2: a consent manager syncing _fbp to Criteo.
	serve("cmp.osano.com", "/osano.js", `
let fbp = get_cookie("_fbp");
if (fbp != null) {
  send("https://sslwidget.criteo.com/event", {"sc": "{\"fbp\":\"" + fbp + "\"}"});
}`)
	in.RegisterFunc("px.ads.linkedin.com", sink)
	in.RegisterFunc("sslwidget.criteo.com", sink)

	// Instrumented visit.
	rec := instrument.NewRecorder()
	b, err := browser.New(browser.Options{
		Internet:         in,
		CookieMiddleware: []browser.CookieMiddleware{rec.Middleware()},
	})
	if err != nil {
		log.Fatal(err)
	}
	rec.ObserveJar(b.Jar())
	page, err := b.Visit("https://www.optimonk-like.example/")
	if err != nil {
		log.Fatal(err)
	}
	vlog := rec.BuildVisitLog("optimonk-like.example", []*browser.Page{page}, nil)

	// Detection, via the incremental analyzer: Observe folds in one log
	// at a time (a streaming crawl feeds it the same way), Finalize
	// aggregates.
	an := analysis.New()
	an.Observe(vlog)
	res := an.Finalize()
	fmt.Println("== detected cross-domain exfiltration events ==")
	for _, e := range res.Events {
		if e.Kind != analysis.ActExfiltration {
			continue
		}
		fmt.Printf("  cookie %-6s (owner %-22s) exfiltrated by %-14s -> %s\n",
			e.Cookie.Name, e.Cookie.Owner, e.ActorDomain, e.Destination)
	}
	fmt.Println("\nBoth case studies are caught even though the _ga segments were")
	fmt.Println("Base64-encoded: the pipeline matches raw, Base64, MD5, and SHA1 forms.")
}

func sink(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNoContent) }
