// Measurement runs a 200-site mini-crawl of the synthetic web and prints
// Table 1 plus the top exfiltrated cookies — the §4–5 pipeline end to
// end, in one streaming pass with live progress.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cookieguard"
	"cookieguard/internal/report"
)

func main() {
	p := cookieguard.New(
		cookieguard.WithSites(200),
		cookieguard.WithWorkers(8),
		cookieguard.WithInteract(true),
		cookieguard.WithProgress(func(done, total int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "  visited %d/%d\n", done, total)
			}
		}),
	)
	fmt.Println("crawling 200 synthetic sites...")
	res, err := p.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncomplete sites: %d / %d\n", res.Summary.SitesComplete, res.Summary.SitesTotal)
	fmt.Printf("sites with third-party scripts: %d (mean %.1f scripts/site, %.0f%% tracking)\n\n",
		res.Summary.SitesWithThirdParty, res.Summary.MeanTPScriptsPerSite,
		100*res.Summary.TrackerScriptShare)

	report.Table1(os.Stdout, res.Table1())
	fmt.Println()
	report.Table2(os.Stdout, res.Table2(10))
}
