// SSO breakage demonstrates Table 3's central finding: strict CookieGuard
// breaks two-domain single sign-on (the identity provider's session
// script cannot read the token its login script set from another domain),
// and the entity whitelist repairs it when both domains belong to the
// same provider.
package main

import (
	"fmt"
	"log"
	"net/http"

	"cookieguard/internal/browser"
	"cookieguard/internal/entity"
	"cookieguard/internal/guard"
	"cookieguard/internal/netsim"
)

func main() {
	in := netsim.New()
	in.RegisterFunc("www.meet-like.example", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, `<html><head>
<script src="https://login.idp.example/login.js"></script>
<script src="https://session.idp-live.example/session.js"></script>
</head><body><div id="login-form">Sign in</div></body></html>`)
	})
	serve := func(host, path, body string) {
		in.RegisterFunc(host, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, body)
		})
		_ = path
	}
	// The login domain mints the token (a ghost-written first-party
	// cookie); the session domain — same provider, different eTLD+1,
	// like microsoft.com/live.com on zoom.us — confirms it.
	serve("login.idp.example", "/login.js",
		`set_cookie("sso_token", rand_id(24), {"max_age": 3600});`)
	serve("session.idp-live.example", "/session.js", `
let tok = get_cookie("sso_token");
if (tok != null) { set_cookie("session_ok", "1", {"max_age": 3600}); }`)

	check := func(label string, pol *guard.Policy) {
		var mw []browser.CookieMiddleware
		var g *guard.Guard
		if pol != nil {
			g = guard.New(*pol)
			defer g.Close()
			mw = append(mw, g.Middleware())
		}
		b, err := browser.New(browser.Options{Internet: in, CookieMiddleware: mw})
		if err != nil {
			log.Fatal(err)
		}
		if g != nil {
			g.AttachBrowser(b)
		}
		if _, err := b.Visit("https://www.meet-like.example/"); err != nil {
			log.Fatal(err)
		}
		ok := b.Jar().Get("https://www.meet-like.example/", "session_ok") != nil
		status := "BROKEN (user cannot sign in)"
		if ok {
			status = "works"
		}
		fmt.Printf("  %-28s SSO %s\n", label, status)
	}

	fmt.Println("== two-domain SSO under three conditions ==")
	check("no guard:", nil)

	strict := guard.DefaultPolicy()
	check("CookieGuard (strict):", &strict)

	// The whitelist groups the provider's two domains into one entity —
	// the refinement that cut breakage from 11% to 3% in the paper.
	wl := guard.WhitelistPolicy(entity.NewMap(map[string][]string{
		"IdP Co": {"idp.example", "idp-live.example"},
	}))
	check("CookieGuard + whitelist:", &wl)
}
