module cookieguard

go 1.24
