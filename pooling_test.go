package cookieguard

import (
	"context"
	"encoding/json"
	"testing"
)

// pipelineRecords crawls the pipeline and returns site -> encoded log.
func pipelineRecords(t *testing.T, opts ...Option) map[string]string {
	t.Helper()
	p := New(opts...)
	logs, err := p.Crawl(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(logs))
	for _, l := range logs {
		b, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		out[l.Site] = string(b)
	}
	return out
}

// TestWithPoolingEquivalence is the pipeline-level determinism contract
// of PR 4: WithPooling(false) and the pooled default emit byte-identical
// per-site records — clean and under faults with retries, across worker
// counts.
func TestWithPoolingEquivalence(t *testing.T) {
	base := []Option{WithSites(40), WithInteract(true), WithSeed(3)}
	ref := pipelineRecords(t, append([]Option{WithWorkers(2), WithPooling(false)}, base...)...)
	for _, workers := range []int{1, 8} {
		got := pipelineRecords(t, append([]Option{WithWorkers(workers)}, base...)...)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d sites != %d", workers, len(got), len(ref))
		}
		for site, want := range ref {
			if got[site] != want {
				t.Fatalf("workers=%d: pooled pipeline record for %s differs", workers, site)
			}
		}
	}

	faulted := []Option{
		WithSites(40), WithInteract(true), WithSeed(3),
		WithFaults(UniformFaults(0.12, 3)), WithRetryPolicy(DefaultRetryPolicy()),
	}
	fref := pipelineRecords(t, append([]Option{WithWorkers(4), WithPooling(false)}, faulted...)...)
	fgot := pipelineRecords(t, append([]Option{WithWorkers(4)}, faulted...)...)
	for site, want := range fref {
		if fgot[site] != want {
			t.Fatalf("faulted pooled pipeline record for %s differs", site)
		}
	}
}

// TestProgressStatsCallback: the live-counter callback fires serialized
// with monotone progress and carries fabric/cache/pool counters.
func TestProgressStatsCallback(t *testing.T) {
	var last ProgressStats
	var calls int
	p := New(
		WithSites(20), WithWorkers(4), WithInteract(true),
		WithProgressStats(func(ps ProgressStats) {
			calls++
			if ps.Done < last.Done || ps.Done > ps.Total {
				t.Errorf("non-monotone progress: %+v after %+v", ps, last)
			}
			last = ps
		}),
	)
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 20 || last.Done != 20 || last.Total != 20 {
		t.Fatalf("progress stats: calls=%d last=%+v", calls, last)
	}
	if last.Requests == 0 {
		t.Fatal("fabric request counter missing from progress stats")
	}
	if last.Cache.Lookups() == 0 {
		t.Fatal("cache stats missing from progress stats")
	}
	if last.Pool.PageAcquired == 0 {
		t.Fatal("pool stats missing from progress stats")
	}
	if p.PoolStats().ReuseRate() <= 0 {
		t.Fatal("pooled crawl reported no reuse")
	}
}
