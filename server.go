package cookieguard

// cookieguard.Server: the HTTP face of the versioned result store. A
// running crawl publishes immutable analysis snapshots into an
// internal/resultstore.Store (every K observed visits and once at
// finalize — see WithSnapshotEvery); the server exposes them as JSON
// with Consul-style blocking queries:
//
//	GET /v1/results                  full canonical analysis (StableJSON)
//	GET /v1/summary                  Results.Summary
//	GET /v1/sites                    per-site records, sorted by site
//	GET /v1/sites/{site}             one site's record
//	GET /v1/tables/retention         crawl-retention rollup, per vantage
//	GET /v1/tables/failures          failure-taxonomy table
//	GET /v1/tables/vantages          per-vantage latency/retention rows
//	GET /v1/tables/personas          per-persona consent-delta rows
//	GET /v1/tables/actions           Table 1 (cross-domain action rates)
//	GET /v1/progress                 crawl progress {done, total, final}
//	GET /v1/stats                    live scheduler/cache/pool/fabric counters
//
// Every versioned endpoint (all but /v1/stats, which reads live atomic
// counters and is never cached) implements the index protocol:
//
//   - The response carries `X-Result-Index: N` and `ETag: "cg-N"`, the
//     monotonic snapshot index the body was built from.
//   - `?index=N` turns the request into a blocking query: if the store
//     has advanced past N the current snapshot returns immediately;
//     otherwise the request parks — no goroutine per waiter — until the
//     next publish or the `?wait=30s` timeout (default 30s, capped at
//     2m), a timeout returning the unchanged index so the client just
//     re-polls with it.
//   - `If-None-Match` with the current ETag short-circuits to 304.
//
// Each endpoint caches one encoding per snapshot index, so any number
// of pollers at the current index cost zero marshalling and never touch
// the analyzer (enforced by an allocation-counting test).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"cookieguard/internal/analysis"
	"cookieguard/internal/resultstore"
)

const (
	// defaultWait is the blocking-query park time when ?index is given
	// without ?wait; maxWait caps client-supplied waits.
	defaultWait = 30 * time.Second
	maxWait     = 2 * time.Minute
)

// LiveStats is the /v1/stats payload: point-in-time counters that change
// with every visit, read from atomics rather than snapshots (hence
// unversioned and uncached).
type LiveStats struct {
	Sched    SchedSnapshot `json:"sched"`
	Cache    CacheStats    `json:"cache"`
	Pool     PoolStats     `json:"pool"`
	Requests int64         `json:"requests"`
	Faults   int64         `json:"faults"`
	// Shards is the per-shard breakdown of a sharded crawl — lifecycle
	// state, launch count (attempts > 1 means the coordinator adopted
	// the shard after a failure), scheduler and journal counters —
	// absent on unsharded crawls. Sched above is the crawl-wide merge of
	// these (owned-work sums, replicated circuit maxima).
	Shards []ShardLiveStats `json:"shards,omitempty"`
}

// Server serves a Pipeline's versioned analysis snapshots over HTTP. It
// implements http.Handler; construct with Pipeline.NewServer and mount
// anywhere (Pipeline.Run auto-mounts it on the WithServer address).
type Server struct {
	pipe  *Pipeline
	store *resultstore.Store
	mux   *http.ServeMux
	// empty stands in for index 0's nil Results so endpoint builders
	// always see a valid (zero) analysis.
	empty *analysis.Results
}

// NewServer returns the HTTP server over this pipeline's result store.
// The store starts at index 0 (empty) and is fed by Pipeline.Run when
// serving is enabled (WithServer / WithSnapshotEvery), or by direct
// ResultStore().Publish calls for custom pipelines.
func (p *Pipeline) NewServer() *Server {
	s := &Server{
		pipe:  p,
		store: p.ResultStore(),
		mux:   http.NewServeMux(),
		empty: analysis.New().Finalize(),
	}
	s.versioned("GET /v1/results", func(res *analysis.Results, _ resultstore.Snapshot) ([]byte, error) {
		return res.StableJSON()
	})
	s.versioned("GET /v1/summary", marshal(func(res *analysis.Results) any { return res.Summary }))
	s.versioned("GET /v1/sites", marshal(func(res *analysis.Results) any { return res.SiteRows() }))
	s.versioned("GET /v1/tables/retention", marshal(func(res *analysis.Results) any { return res.Retention() }))
	s.versioned("GET /v1/tables/failures", marshal(func(res *analysis.Results) any { return res.FailureTable() }))
	s.versioned("GET /v1/tables/vantages", marshal(func(res *analysis.Results) any { return res.VantageTable() }))
	s.versioned("GET /v1/tables/personas", marshal(func(res *analysis.Results) any { return res.PersonaTable() }))
	s.versioned("GET /v1/tables/actions", marshal(func(res *analysis.Results) any { return res.Table1() }))
	s.versioned("GET /v1/progress", func(_ *analysis.Results, snap resultstore.Snapshot) ([]byte, error) {
		return json.Marshal(struct {
			Index uint64 `json:"index"`
			resultstore.Progress
		}{snap.Index, snap.Progress})
	})
	s.mux.HandleFunc("GET /v1/sites/{site}", s.handleSite)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// marshal adapts a plain view function to the versioned builder shape.
func marshal(view func(*analysis.Results) any) func(*analysis.Results, resultstore.Snapshot) ([]byte, error) {
	return func(res *analysis.Results, _ resultstore.Snapshot) ([]byte, error) {
		return json.Marshal(view(res))
	}
}

// encCache memoizes one endpoint's encoding of one snapshot index.
// Published snapshots are immutable, so index equality is encoding
// validity; a new index simply overwrites (pollers only ever want the
// newest version).
type encCache struct {
	mu    sync.Mutex
	index uint64
	body  []byte
	valid bool
}

func (c *encCache) get(snap resultstore.Snapshot, build func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.valid && c.index == snap.Index {
		return c.body, nil
	}
	body, err := build()
	if err != nil {
		return nil, err
	}
	c.index, c.body, c.valid = snap.Index, body, true
	return body, nil
}

// versioned mounts one blocking-query endpoint: resolve the snapshot
// (waiting if the client is up to date), handle ETag/304, serve the
// per-index cached encoding.
func (s *Server) versioned(pattern string, build func(*analysis.Results, resultstore.Snapshot) ([]byte, error)) {
	cache := &encCache{}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		snap, ok := s.resolve(w, r)
		if !ok {
			return
		}
		etag := setVersionHeaders(w, snap.Index)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		body, err := cache.get(snap, func() ([]byte, error) {
			return build(s.results(snap), snap)
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
}

// resolve implements the query half of the index protocol: no ?index →
// current snapshot immediately; ?index=N → block until the store
// advances past N, the wait expires, or the client goes away.
func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (resultstore.Snapshot, bool) {
	q := r.URL.Query()
	idxStr := q.Get("index")
	if idxStr == "" {
		return s.store.Latest(), true
	}
	index, err := strconv.ParseUint(idxStr, 10, 64)
	if err != nil {
		http.Error(w, "bad index: "+err.Error(), http.StatusBadRequest)
		return resultstore.Snapshot{}, false
	}
	wait := defaultWait
	if ws := q.Get("wait"); ws != "" {
		if wait, err = time.ParseDuration(ws); err != nil {
			http.Error(w, "bad wait: "+err.Error(), http.StatusBadRequest)
			return resultstore.Snapshot{}, false
		}
		if wait > maxWait {
			wait = maxWait
		}
	}
	return s.store.Wait(r.Context(), index, wait), true
}

func setVersionHeaders(w http.ResponseWriter, index uint64) (etag string) {
	etag = fmt.Sprintf("%q", "cg-"+strconv.FormatUint(index, 10))
	h := w.Header()
	h.Set("X-Result-Index", strconv.FormatUint(index, 10))
	h.Set("ETag", etag)
	return etag
}

func (s *Server) results(snap resultstore.Snapshot) *analysis.Results {
	if snap.Results == nil {
		return s.empty
	}
	return snap.Results
}

// handleSite serves one site's record. Versioned like the table
// endpoints but marshalled per request (the per-site fan-out is too wide
// to cache every encoding; a dashboard polls tables, not single sites).
func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.resolve(w, r)
	if !ok {
		return
	}
	etag := setVersionHeaders(w, snap.Index)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	site := r.PathValue("site")
	res := s.results(snap)
	row, found := siteRow(res, site)
	if !found {
		http.Error(w, "unknown site: "+site, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(row)
}

// siteRow extracts one site's record from finalized Results.
func siteRow(res *analysis.Results, site string) (analysis.SiteRow, bool) {
	row := analysis.SiteRow{Site: site}
	found := false
	if acts, ok := res.SiteActions[site]; ok {
		found = true
		for k := range acts {
			row.Actions = append(row.Actions, analysis.SiteAction{Action: k.Kind, API: k.API})
		}
		sort.Slice(row.Actions, func(i, j int) bool {
			if row.Actions[i].Action != row.Actions[j].Action {
				return row.Actions[i].Action < row.Actions[j].Action
			}
			return row.Actions[i].API < row.Actions[j].API
		})
	}
	for _, e := range res.Events {
		if e.Site == site {
			row.Events = append(row.Events, e)
			found = true
		}
	}
	return row, found
}

// handleStats serves the live counters. Unversioned: the values come
// from atomic counters that advance with every visit, so there is no
// meaningful index to block on — poll /v1/progress for versioned
// advancement and this for instantaneous rates.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(LiveStats{
		Sched:    s.pipe.SchedStats(),
		Cache:    s.pipe.CacheStats(),
		Pool:     s.pipe.PoolStats(),
		Requests: s.pipe.Net.Requests(),
		Faults:   s.pipe.Net.Faults(),
		Shards:   s.pipe.ShardStats(),
	})
}
